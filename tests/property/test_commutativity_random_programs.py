"""The commutativity certificate is sound on random programs.

The sequential oracle: match both rules of a pair against the *same*
initial database (closed-world view — the raw material ``Γ`` collects in
a round), then apply the two ground update sets in both orders.  If the
two orders disagree on the final database, the pair inserted and deleted
the same ground atom — exactly what ``PARK042`` (delete-insert
interference) over-approximates.  So for every pair the analysis did
*not* flag PARK042, both orders must be bit-identical; and a fortiori
rules sharing a certified parallel group must commute.

Runs the oracle over 200+ random workloads (25 seeds x 8 generator
configurations), every live rule pair each.
"""

import itertools

import pytest

from repro.engine.match import fireable_heads
from repro.engine.views import DatabaseView
from repro.lang.updates import UpdateOp
from repro.lint import ProgramFacts
from repro.lint.commutativity import DELETE_INSERT
from repro.workloads.random_programs import random_workload

SEEDS = range(25)

#: Generator knobs: vary event density, delete density, and program size
#: so the sweep covers event-polarity filtering and both head polarities.
CONFIGS = (
    {"num_rules": 6, "num_facts": 10},
    {"num_rules": 8, "num_facts": 12},
    {"num_rules": 6, "num_facts": 10, "delete_head_probability": 0.4},
    {"num_rules": 8, "num_facts": 14, "delete_head_probability": 0.5},
    {"num_rules": 6, "num_facts": 10, "event_probability": 0.3},
    {
        "num_rules": 8,
        "num_facts": 12,
        "event_probability": 0.3,
        "delete_head_probability": 0.4,
    },
    {"num_rules": 10, "num_facts": 16, "delete_head_probability": 0.3},
    {
        "num_rules": 10,
        "num_facts": 16,
        "event_probability": 0.2,
        "delete_head_probability": 0.2,
    },
)


def apply_updates(atoms, updates):
    """Apply ground *updates* to a set of atoms, in the iteration order."""
    result = set(atoms)
    for update in updates:
        if update.op is UpdateOp.INSERT:
            result.add(update.atom)
        else:
            result.discard(update.atom)
    return result


def oracle_diverges(initial, left_updates, right_updates):
    """Whether applying the two update sets in both orders disagrees."""
    left_first = apply_updates(
        apply_updates(initial, left_updates), right_updates
    )
    right_first = apply_updates(
        apply_updates(initial, right_updates), left_updates
    )
    return left_first != right_first


def check_workload(workload):
    """Run the oracle over every live rule pair of one workload.

    Returns ``(pairs_checked, divergent)`` for reporting.
    """
    program = tuple(workload.program)
    facts = ProgramFacts.analyze(program)
    view = DatabaseView(workload.database)
    initial = frozenset(workload.database)
    updates = {
        index: list(fireable_heads(program[index], view))
        for index in facts.live
    }
    flagged = {
        (pair.left, pair.right)
        for pair in facts.interference
        if pair.kind == DELETE_INSERT
    }
    group_of = {}
    for group_id, group in enumerate(facts.parallel_groups):
        for index in group.rules:
            group_of[index] = group_id

    checked = divergent = 0
    for left, right in itertools.combinations(sorted(facts.live), 2):
        checked += 1
        if not oracle_diverges(initial, updates[left], updates[right]):
            continue
        divergent += 1
        # Soundness: a divergent pair must carry the PARK042 flag...
        assert (left, right) in flagged, (
            "%s: rules %d and %d do not commute but were not flagged "
            "delete-insert" % (workload.name, left, right)
        )
        # ...and must never share a certified parallel group.
        assert group_of[left] != group_of[right], (
            "%s: non-commuting rules %d and %d share a parallel group"
            % (workload.name, left, right)
        )
    return checked, divergent


class TestCertificateSoundness:
    @pytest.mark.parametrize("config", range(len(CONFIGS)))
    def test_unflagged_pairs_commute(self, config):
        options = dict(CONFIGS[config])
        num_rules = options.pop("num_rules")
        num_facts = options.pop("num_facts")
        checked = 0
        for seed in SEEDS:
            workload = random_workload(
                seed + 1000 * config,
                num_rules=num_rules,
                num_facts=num_facts,
                **options
            )
            pairs, _ = check_workload(workload)
            checked += pairs
        assert checked > 0

    def test_oracle_detects_the_race(self):
        # Sanity-check the oracle itself: a true delete/insert overlap on
        # the same ground atom must diverge (so the suite is not
        # vacuously green).
        from repro.lang import parse_database, parse_program
        from repro.storage.database import Database
        from repro.workloads.base import Workload

        workload = Workload(
            name="oracle-sanity",
            program=parse_program("p(X) -> +q(X). r(X) -> -q(X)."),
            database=Database(parse_database("p(a). r(a).")),
            description="delete/insert overlap on q(a)",
        )
        program = tuple(workload.program)
        view = DatabaseView(workload.database)
        initial = frozenset(workload.database)
        left = list(fireable_heads(program[0], view))
        right = list(fireable_heads(program[1], view))
        assert oracle_diverges(initial, left, right)
        # and the analysis flags it, keeping check_workload meaningful
        facts = ProgramFacts.analyze(program)
        assert [pair.kind for pair in facts.interference] == [DELETE_INSERT]
