"""The production engine must equal the literal Θ^ω construction.

`repro.core.engine.ParkEngine` optimizes the paper's iteration (mutable
interpretation, shared matcher pass, provenance) while
`repro.core.transition.theta_omega` is the direct transcription.  On any
safe program they must produce the same final interpretation, the same
blocked set, and hence the same result database — this is the strongest
internal consistency check the reproduction has.
"""

from hypothesis import HealthCheck, given, settings

from tests.property import strategies as strat

from repro.core.engine import park
from repro.core.incorporate import incorp
from repro.core.transition import theta_omega
from repro.policies.inertia import InertiaPolicy

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(pair=strat.program_database_pairs())
@RELAXED
def test_engine_equals_theta_omega(pair):
    program, database = pair
    engine_result = park(program, database)
    fixpoint, _ = theta_omega(program, database, InertiaPolicy())

    assert engine_result.blocked == fixpoint.blocked
    assert engine_result.interpretation.freeze() == fixpoint.frozen_interpretation
    assert engine_result.database == incorp(fixpoint.interpretation)


@given(pair=strat.program_database_pairs())
@RELAXED
def test_step_count_matches(pair):
    """Engine rounds == Θ grow-steps + resolve-steps + the final fixpoint check."""
    program, database = pair
    engine_result = park(program, database)
    _, steps = theta_omega(program, database, InertiaPolicy(), collect=True)
    grows = sum(1 for s in steps if s.kind == "grow")
    resolves = sum(1 for s in steps if s.kind == "resolve")
    assert engine_result.stats.restarts == resolves
    # each grow is one consistent applied round; +1 for the fixpoint-
    # confirming round; each resolve also consumed one engine round.
    assert engine_result.stats.rounds == grows + resolves + 1
