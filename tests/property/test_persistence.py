"""Property tests for persistence: text I/O and journal recovery."""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.property import strategies as strat
from tests.property.test_structures import ground_atom_lists

from repro.active import ActiveDatabase
from repro.lang.program import Program
from repro.storage.database import Database
from repro.storage.textio import (
    dump_database,
    dump_program,
    load_database,
    load_program,
)

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.function_scoped_fixture,
    ],
)


class TestTextRoundTrip:
    @given(atoms_list=ground_atom_lists)
    @RELAXED
    def test_database_files_roundtrip(self, atoms_list, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("dbio") / "db.park")
        database = Database(atoms_list)
        dump_database(database, path)
        assert load_database(path) == database

    @given(pair=strat.arity_consistent_programs())
    @RELAXED
    def test_program_files_roundtrip(self, pair, tmp_path_factory):
        program, _ = pair
        path = str(tmp_path_factory.mktemp("progio") / "rules.park")
        dump_program(program, path)
        assert load_program(path) == program


@st.composite
def commit_scripts(draw):
    """A sequence of insert/delete operations over a tiny atom space."""
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.sampled_from(["p", "q", "r"]),
                st.sampled_from(["a", "b"]),
            ),
            min_size=1,
            max_size=8,
        )
    )
    return operations


class TestJournalRecovery:
    @given(script=commit_scripts())
    @RELAXED
    def test_recovered_state_equals_live_state(self, script, tmp_path_factory):
        base = tmp_path_factory.mktemp("journal")
        snapshot = str(base / "base.park")
        journal_path = str(base / "commits.journal")

        db = ActiveDatabase.from_text("seed(x).", journal=journal_path)
        db.add_rule("@name(echo) +p(V) -> +echoed(V).")
        db.checkpoint(snapshot)

        for operation, predicate, value in script:
            with db.transaction() as tx:
                getattr(tx, operation)(predicate, value)

        recovered = ActiveDatabase.recover(snapshot, journal_path)
        assert recovered.database == db.database

    @given(script=commit_scripts())
    @RELAXED
    def test_checkpoint_mid_history(self, script, tmp_path_factory):
        base = tmp_path_factory.mktemp("journal2")
        snapshot = str(base / "base.park")
        journal_path = str(base / "commits.journal")

        db = ActiveDatabase.from_text("seed(x).", journal=journal_path)
        db.checkpoint(snapshot)
        half = len(script) // 2
        for operation, predicate, value in script[:half]:
            with db.transaction() as tx:
                getattr(tx, operation)(predicate, value)
        db.checkpoint(snapshot)  # re-checkpoint and truncate
        for operation, predicate, value in script[half:]:
            with db.transaction() as tx:
                getattr(tx, operation)(predicate, value)

        recovered = ActiveDatabase.recover(snapshot, journal_path)
        assert recovered.database == db.database
