"""Effect analysis: per-rule read/write sets (``repro.lint.effects``)."""

from repro.lang import parse_program
from repro.lang.updates import UpdateOp
from repro.lint.effects import (
    CONDITION,
    EVENT,
    NEGATION,
    compute_effects,
    rule_effects,
)
from repro.obs import Metrics
from repro.obs import metrics as _obs


def effects_of(text):
    rules = parse_program(text)
    return compute_effects(rules)


class TestReadSet:
    def test_condition_negation_event_kinds(self):
        (eff,) = effects_of("p(X), not q(X), +r(X) -> +s(X).")
        assert [read.kind for read in eff.reads] == [CONDITION, NEGATION, EVENT]
        assert [read.predicate for read in eff.reads] == ["p", "q", "r"]
        assert [read.literal_index for read in eff.reads] == [0, 1, 2]

    def test_event_reads_its_own_polarity_only(self):
        (plus, minus) = effects_of("+p(X) -> +q(X). -p(X) -> +r(X).")
        (plus_read,) = plus.reads
        (minus_read,) = minus.reads
        assert plus_read.op is UpdateOp.INSERT
        assert plus_read.observes(UpdateOp.INSERT)
        assert not plus_read.observes(UpdateOp.DELETE)
        assert minus_read.op is UpdateOp.DELETE
        assert minus_read.observes(UpdateOp.DELETE)
        assert not minus_read.observes(UpdateOp.INSERT)

    def test_conditions_observe_both_polarities(self):
        (eff,) = effects_of("p(X), not q(X) -> +s(X).")
        for read in eff.reads:
            assert read.op is None
            assert read.observes(UpdateOp.INSERT)
            assert read.observes(UpdateOp.DELETE)

    def test_bodyless_rule_reads_nothing(self):
        (eff,) = effects_of("-> +seed(a).")
        assert eff.reads == ()


class TestWriteSet:
    def test_insert_head(self):
        (eff,) = effects_of("p(X) -> +q(X).")
        (write,) = eff.writes
        assert write.op is UpdateOp.INSERT
        assert write.predicate == "q"

    def test_delete_head(self):
        (eff,) = effects_of("p(X) -> -q(X).")
        (write,) = eff.writes
        assert write.op is UpdateOp.DELETE
        assert write.predicate == "q"


class TestPolicyReads:
    def test_subset_of_positive_conditions(self):
        # Policy reads are the positive-condition predicates: the shipped
        # SELECT policies inspect at most the ground positive body.
        (eff,) = effects_of("b(X), a(X), not n(X), +e(X) -> +q(X).")
        assert eff.policy_reads == ("a", "b")
        assert set(eff.policy_reads) <= eff.read_predicates()


class TestJsonShape:
    def test_round_trippable_record(self):
        (eff,) = effects_of("p(X), +r(X) -> -q(X).")
        record = eff.to_json()
        assert record["rule_index"] == 0
        assert record["reads"][0] == {
            "literal": 0, "kind": CONDITION, "atom": "p(X)",
        }
        assert record["reads"][1] == {
            "literal": 1, "kind": EVENT, "op": "+", "atom": "r(X)",
        }
        assert record["writes"] == [{"op": "-", "atom": "q(X)"}]


class TestAlignmentAndMetrics:
    def test_indices_align_with_rule_order(self):
        effects = effects_of("a -> +x. b -> +y. c -> +z.")
        assert [eff.rule_index for eff in effects] == [0, 1, 2]

    def test_counters(self):
        metrics = Metrics()
        previous = _obs.set_active(metrics)
        try:
            effects_of("p(X), not q(X) -> +s(X). +t(X) -> -u(X).")
        finally:
            _obs.set_active(previous)
        assert metrics.counters["lint.effects.rules"] == 2
        assert metrics.counters["lint.effects.reads"] == 3
        assert metrics.counters["lint.effects.writes"] == 2

    def test_rule_effects_single(self):
        (rule,) = parse_program("p(X) -> +q(X).")
        eff = rule_effects(rule, 7)
        assert eff.rule_index == 7
        assert all(read.rule_index == 7 for read in eff.reads)
        assert all(write.rule_index == 7 for write in eff.writes)
