"""Conflict pass: PARK020 (pair), PARK021 (policy can't order), PARK022."""

from repro.lint import analyze_text


def codes(report):
    return [d.code for d in report.diagnostics]


CONFLICTING = """
@name(ins) p(X) -> +flag(X).
@name(del) p(X), not ok(X) -> -flag(X).
"""


class TestConflictPairs:
    def test_park020_names_both_witnesses(self):
        report = analyze_text(CONFLICTING)
        (diag,) = [d for d in report.diagnostics if d.code == "PARK020"]
        assert diag.severity == "info"
        assert "'flag'" in diag.message
        assert "ins" in diag.message and "del" in diag.message
        assert not report.facts.conflict_free

    def test_refined_by_head_unification(self):
        # +p(a) and -p(b) can never collide on the same ground atom.
        report = analyze_text("q(X) -> +p(a). q(X) -> -p(b).")
        assert "PARK020" not in codes(report)
        assert report.facts.conflict_free

    def test_dead_rules_do_not_create_pairs(self):
        # The deleting rule is event-gated on an event nothing emits.
        text = "q(X) -> +p(X). +never(X), q(X) -> -p(X)."
        report = analyze_text(text)
        assert "PARK020" not in codes(report)
        assert report.facts.conflict_free


class TestPolicyOrdering:
    def test_park021_priority_tie(self):
        report = analyze_text(CONFLICTING, policy="priority")
        (diag,) = [d for d in report.diagnostics if d.code == "PARK021"]
        assert diag.severity == "warning"
        assert "priority" in diag.message

    def test_priority_ordering_silences_park021(self):
        text = """
        @name(ins) @priority(2) p(X) -> +flag(X).
        @name(del) p(X), not ok(X) -> -flag(X).
        """
        report = analyze_text(text, policy="priority")
        assert "PARK021" not in codes(report)

    def test_park021_specificity_incomparable(self):
        report = analyze_text(CONFLICTING, policy="specificity")
        assert "PARK021" in codes(report)

    def test_specificity_ordering_silences_park021(self):
        text = """
        @name(gen) bird(X) -> +flies(X).
        @name(spec) bird(X), penguin(X) -> -flies(X).
        """
        report = analyze_text(text, policy="specificity")
        assert "PARK020" in codes(report)
        assert "PARK021" not in codes(report)

    def test_inertia_never_warns(self):
        report = analyze_text(CONFLICTING, policy="inertia")
        assert "PARK021" not in codes(report)
        assert "PARK022" not in codes(report)


class TestPolicyNeverInvoked:
    def test_park022_on_conflict_free_program(self):
        report = analyze_text("p(X) -> +q(X).", policy="priority")
        (diag,) = [d for d in report.diagnostics if d.code == "PARK022"]
        assert diag.severity == "info"
        assert "priority" in diag.message

    def test_no_park022_without_a_policy(self):
        report = analyze_text("p(X) -> +q(X).")
        assert "PARK022" not in codes(report)

    def test_no_park022_when_conflicts_reachable(self):
        report = analyze_text(CONFLICTING, policy="random:7")
        assert "PARK022" not in codes(report)
