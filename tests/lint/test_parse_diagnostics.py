"""Parser-derived diagnostics: PARK001/004/005, recovery, located errors."""

import pytest

from repro.errors import ArityError, LanguageError, ParseError, SafetyError
from repro.lang import parse_program, parse_source
from repro.lint import analyze_text


def codes(report):
    return [d.code for d in report.diagnostics]


class TestSyntaxDiagnostics:
    def test_park001_with_position(self):
        report = analyze_text("p(X ->")
        (diag,) = report.diagnostics
        assert diag.code == "PARK001"
        assert diag.severity == "error"
        assert diag.span is not None
        # the message does not repeat the position the span already carries
        assert "line" not in diag.message

    def test_recovery_continues_after_bad_statement(self):
        text = "p(X ->.\nq(X) -> +r(X).\n"
        report = analyze_text(text)
        assert codes(report) == ["PARK001"]
        assert report.rules == 1

    def test_multiple_syntax_errors_all_reported(self):
        text = "p( ->.\nq( ->.\nr(X) -> +s(X).\n"
        report = analyze_text(text)
        assert codes(report) == ["PARK001", "PARK001"]
        assert [d.span.line for d in report.diagnostics] == [1, 2]


class TestSchemaDiagnostics:
    def test_park005_duplicate_name(self):
        text = "@name(d) p(X) -> +q(X).\n@name(d) p(X) -> +r(X).\n"
        report = analyze_text(text)
        (diag,) = [d for d in report.diagnostics if d.code == "PARK005"]
        assert "'d'" in diag.message
        assert diag.span.line == 2

    def test_park004_arity_clash(self):
        text = "p(X) -> +q(X).\np(X, X) -> +r(X).\n"
        report = analyze_text(text)
        (diag,) = [d for d in report.diagnostics if d.code == "PARK004"]
        assert "'p'" in diag.message
        assert diag.span.line == 2


class TestStrictParserLocations:
    """Satellite: every strict-parse error carries line/column."""

    def test_safety_error_located(self):
        with pytest.raises(SafetyError) as info:
            parse_program("p(X) -> +q(X, Y).")
        assert "line 1, column 1" in str(info.value)
        assert info.value.line == 1

    def test_duplicate_name_located(self):
        with pytest.raises(LanguageError) as info:
            parse_program("@name(d) -> +p. @name(d) -> +q.")
        assert "line 1, column 17" in str(info.value)

    def test_arity_error_located(self):
        with pytest.raises(ArityError) as info:
            parse_program("-> +p(a). -> +p(a, b).")
        assert "line 1, column" in str(info.value)
        assert info.value.column is not None

    def test_syntax_error_located(self):
        with pytest.raises(ParseError) as info:
            parse_program("p(X) -> ")
        assert info.value.line is not None


class TestLenientParse:
    def test_unsafe_rules_built_unchecked(self):
        parsed = parse_source("p(X) -> +q(X, Y).")
        assert len(parsed.rules) == 1
        assert [i.kind for i in parsed.issues] == ["safety"]
        assert parsed.issues[0].rule_index == 0

    def test_spans_aligned_with_rules(self):
        parsed = parse_source("p(X) -> +q(X).\nr(X) -> +s(X).\n")
        assert parsed.clean
        assert len(parsed.spans) == 2
        assert parsed.spans[0].rule.line == 1
        assert parsed.spans[1].rule.line == 2

    def test_program_revalidates(self):
        parsed = parse_source("p(X) -> +q(X, Y).")
        with pytest.raises(SafetyError):
            parsed.program()
