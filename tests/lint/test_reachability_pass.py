"""Reachability pass: PARK030 (dead rule) and PARK031 (unmatched event)."""

from repro.lang import parse_database
from repro.lint import analyze_text
from repro.storage.database import Database


def codes(report):
    return [d.code for d in report.diagnostics]


class TestUnmatchedEvents:
    def test_park031_points_at_the_event_literal(self):
        report = analyze_text("@name(ghost) p(X), +never(X) -> +q(X).")
        (diag,) = report.diagnostics
        assert diag.code == "PARK031"
        assert diag.severity == "warning"
        assert "+never" in diag.message
        assert "transaction" in diag.message
        assert diag.span.column == len("@name(ghost) p(X), ") + 1

    def test_polarity_matters(self):
        # +p is emitted, but the rule listens for -p.
        report = analyze_text("q(X) -> +p(X). -p(X) -> +r(X).")
        (diag,) = [d for d in report.diagnostics if d.code == "PARK031"]
        assert "-p" in diag.message

    def test_matched_event_is_clean(self):
        # No reachability finding; the commutativity pass reports the
        # (info) read-write coupling through the +p event.
        report = analyze_text("q(X) -> +p(X). +p(X) -> +r(X).")
        assert codes(report) == ["PARK040"]

    def test_no_duplicate_park030_for_event_dead_rules(self):
        # The unmatched event already explains why the rule is dead.
        report = analyze_text("+never(X) -> +q(X).")
        assert codes(report) == ["PARK031"]


class TestDeadRules:
    def test_no_park030_without_a_database(self):
        # Without EDB knowledge any positive condition may be satisfiable.
        report = analyze_text("mystery(X) -> +q(X).")
        assert codes(report) == []

    def test_park030_with_database_knowledge(self):
        db = Database(parse_database("p(a)."))
        report = analyze_text("p(X) -> +q(X). empty(X) -> +r(X).", database=db)
        (diag,) = [d for d in report.diagnostics if d.code == "PARK030"]
        assert diag.severity == "warning"
        assert diag.rule_index == 1
        assert report.facts.dead == (1,)
        assert report.facts.database_aware

    def test_dead_rules_propagate_through_derivations(self):
        # idb is only derivable via a rule that is itself dead.
        db = Database(parse_database("p(a)."))
        text = "+never(X) -> +idb(X). idb(X) -> +out(X). p(X) -> +ok(X)."
        report = analyze_text(text, database=db)
        assert codes(report) == ["PARK031", "PARK030"]
        assert set(report.facts.dead) == {0, 1}

    def test_live_derivation_keeps_dependents_alive(self):
        db = Database(parse_database("p(a)."))
        text = "p(X) -> +idb(X). idb(X) -> +out(X)."
        report = analyze_text(text, database=db)
        # PARK040 (info) is the derivation chain itself: rule 0's head
        # feeds rule 1's body.  No reachability findings.
        assert codes(report) == ["PARK040"]
        assert report.facts.dead == ()
