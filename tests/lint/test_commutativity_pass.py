"""Commutativity pass: PARK040-043, interference matrix, parallel groups.

The four golden files pin the full ``repro check --json`` output of one
minimal triggering program per code (fed through stdin so paths are
stable); regenerate with e.g.::

    printf '<program>' | PYTHONPATH=src python -m repro check --json - \
        > tests/lint/golden/park040.json
"""

import io
import json
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.lang import parse_program
from repro.lint import ProgramFacts, analyze_text
from repro.lint.commutativity import (
    DELETE_INSERT,
    READ_WRITE,
    WRITE_WRITE,
    _classify_pair,
    certify_groups,
    rule_strata,
)
from repro.lint.effects import compute_effects

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: One minimal triggering program per diagnostic code (see docs/lint.md).
MINIMAL = {
    "PARK040": "q(Y) -> +p(Y). p(X) -> +r(X).",   # head p feeds a body read
    "PARK041": "p(X) -> +q(X). r(X) -> +q(X).",   # both insert q
    "PARK042": "p(X) -> +q(X). r(X) -> -q(X).",   # opposite polarities on q
    "PARK043": "p(X) -> +a(X). q(X) -> +b(X).",   # disjoint: one group of 2
}


def codes(report):
    return [d.code for d in report.diagnostics]


class TestGoldenJson:
    @pytest.mark.parametrize("code", sorted(MINIMAL))
    def test_minimal_program_matches_golden(self, code, monkeypatch):
        monkeypatch.setattr(sys, "stdin", io.StringIO(MINIMAL[code]))
        out = io.StringIO()
        exit_code = main(["check", "--json", "-"], out=out)
        assert exit_code == 0  # all four codes are info: never gate
        golden = json.loads((GOLDEN_DIR / ("park%s.json" % code[4:])).read_text())
        produced = json.loads(out.getvalue())
        assert produced == golden
        assert code in [
            d["code"] for d in produced["files"][0]["diagnostics"]
        ]


class TestDiagnostics:
    def test_park040_read_write(self):
        report = analyze_text(MINIMAL["PARK040"])
        (diag,) = report.diagnostics
        assert diag.code == "PARK040"
        assert diag.severity == "info"
        assert "read-write" in diag.message
        assert "stratum 0" in diag.message

    def test_park041_write_write(self):
        report = analyze_text(MINIMAL["PARK041"])
        (diag,) = report.diagnostics
        assert diag.code == "PARK041"
        assert "+q(X) vs +q(X)" in diag.message

    def test_park042_delete_insert(self):
        report = analyze_text(MINIMAL["PARK042"])
        assert codes(report) == ["PARK020", "PARK042"]
        diag = report.diagnostics[1]
        assert "non-commutative" in diag.message
        assert "+q(X) vs -q(X)" in diag.message

    def test_park043_certificate(self):
        report = analyze_text(MINIMAL["PARK043"])
        (diag,) = report.diagnostics
        assert diag.code == "PARK043"
        assert "stratum 0: 2" in diag.message

    def test_strongest_kind_wins(self):
        # r2 writes -q and also reads p which r1 writes: one pair, one
        # diagnostic, under the strongest kind (delete-insert).
        report = analyze_text("a(X) -> +q(X). q(X) -> -q(X).")
        found = [c for c in codes(report) if c.startswith("PARK04")]
        assert found == ["PARK042"]

    def test_disjoint_constants_do_not_interfere(self):
        # Atom-level precision: q(a) and q(b) cannot unify.
        report = analyze_text("p(X) -> +q(a). r(X) -> -q(b).")
        assert [c for c in codes(report) if c.startswith("PARK04")] == [
            "PARK043"
        ]

    def test_pairs_span_points_at_left_rule(self):
        report = analyze_text("p(X) -> +q(X).\nr(X) -> -q(X).")
        diag = next(d for d in report.diagnostics if d.code == "PARK042")
        assert diag.rule_index == 0
        assert diag.span.line == 1


class TestClassifyPair:
    def pair(self, text):
        effects = compute_effects(parse_program(text))
        return _classify_pair(effects[0], effects[1])

    def test_delete_insert_beats_write_write(self):
        kind, predicate, witness = self.pair("a -> +q. b -> -q.")
        assert kind == DELETE_INSERT
        assert predicate == "q"

    def test_write_write_beats_read_write(self):
        # Same-polarity write overlap and a read overlap: write-write wins.
        kind, _, _ = self.pair("q(X) -> +q(X). a(X) -> +q(X).")
        assert kind == WRITE_WRITE

    def test_read_write_both_directions(self):
        assert self.pair("a(X) -> +p(X). p(X) -> +b(X).")[0] == READ_WRITE
        assert self.pair("p(X) -> +b(X). a(X) -> +p(X).")[0] == READ_WRITE

    def test_event_polarity_filters_read_write(self):
        # -q event does not observe +q writes...
        assert self.pair("a(X) -> +q(X). -q(X) -> +b(X).") is None
        # ...but a +q event does.
        assert self.pair("a(X) -> +q(X). +q(X) -> +b(X).")[0] == READ_WRITE

    def test_independent_pair(self):
        assert self.pair("a(X) -> +x(X). b(X) -> +y(X).") is None


class TestRuleStrata:
    def test_positive_program_single_stratum(self):
        rules = parse_program("e(X, Y) -> +t(X, Y). t(X, Y), e(Y, Z) -> +t(X, Z).")
        assert rule_strata(rules) == (0, 0)

    def test_negation_raises_stratum(self):
        rules = parse_program("a(X) -> +p(X). b(X), not p(X) -> +q(X).")
        strata = rule_strata(rules)
        assert strata[1] > strata[0]

    def test_unstratifiable_falls_back_to_zero(self):
        rules = parse_program(
            "a(X), not q(X) -> +p(X). b(X), not p(X) -> +q(X)."
        )
        assert rule_strata(rules) == (0, 0)

    def test_cross_stratum_pairs_not_reported(self):
        # Rule 1 reads p, which rule 0 writes — but its head sits in a
        # higher stratum, so the strata are already a scheduling barrier
        # and no read-write pair is reported.
        text = "a(X) -> +p(X). b(X), not p(X) -> +q(X)."
        rules = parse_program(text)
        assert rule_strata(rules)[0] != rule_strata(rules)[1]
        report = analyze_text(text)
        assert "PARK040" not in codes(report)


class TestCertifiedGroups:
    def facts(self, text):
        return ProgramFacts.analyze(parse_program(text))

    def test_groups_partition_live_rules(self):
        facts = self.facts(
            "p(X) -> +a(X). q(X) -> +b(X). a(X) -> -b(X). +never(X) -> +c(X)."
        )
        covered = sorted(
            index for group in facts.parallel_groups for index in group.rules
        )
        assert covered == sorted(facts.live)
        assert 3 not in covered  # the dead rule is not scheduled

    def test_interfering_rules_in_distinct_groups(self):
        facts = self.facts(MINIMAL["PARK042"])
        group_of = {}
        for gid, group in enumerate(facts.parallel_groups):
            for index in group.rules:
                group_of[index] = gid
        for pair in facts.interference:
            assert group_of[pair.left] != group_of[pair.right]

    def test_greedy_coloring_is_deterministic(self):
        text = "a -> +x. b -> +x. c -> +y. d -> +y."
        left = self.facts(text).parallel_groups
        right = self.facts(text).parallel_groups
        assert left == right
        # 0 interferes with 1, 2 with 3: two groups of two.
        assert [group.rules for group in left] == [(0, 2), (1, 3)]

    def test_certify_groups_direct(self):
        rules = parse_program("p(X) -> +a(X). q(X) -> +b(X).")
        effects = compute_effects(rules)
        pairs, groups = certify_groups(
            rules, effects, rule_strata(rules), live={0, 1}
        )
        assert pairs == ()
        assert [group.rules for group in groups] == [(0, 1)]
