"""Engine fast paths from ProgramFacts are fingerprint-preserving.

For every gated path (conflict-scan skip, auto-seminaive routing,
dead-rule pruning, group-batched collection) the semantic fingerprint —
final atoms, blocked set, rounds, restarts, and total firings — must be
bit-identical to the ungated run, across all three evaluation strategies
and both matcher backends.
"""

import pytest

from repro.core.consequence import GammaResult
from repro.core.engine import ParkEngine
from repro.engine.match import (
    clear_compile_cache,
    get_matcher_backend,
    set_matcher_backend,
)
from repro.lang import parse_database, parse_program
from repro.lang.parser import parse_atom
from repro.lang.updates import Update, UpdateOp
from repro.lint import ProgramFacts
from repro.obs import Metrics
from repro.storage.database import Database

STRATEGIES = ("naive", "seminaive", "incremental")
BACKENDS = ("compiled", "interpreted")
GATES = ("facts_conflict_skip", "facts_seminaive", "facts_prune", "facts_groups")

CONFLICT_FREE = parse_program(
    """
    @name(base) edge(X, Y) -> +tc(X, Y).
    @name(step) edge(X, Y), tc(Y, Z) -> +tc(X, Z).
    @name(ghost) +never(X) -> +boom(X).
    """
)
CONFLICT_FREE_DB = "edge(a, b). edge(b, c). edge(c, d)."

CONFLICTING = parse_program(
    """
    @name(init) -> +p.
    @name(r1) p -> +q.
    @name(r2) p -> -a.
    @name(r3) q -> +a.
    """
)


def fingerprint(result):
    return (
        result.database,
        result.blocked,
        result.stats.rounds,
        result.stats.restarts,
        result.stats.firings_total,
    )


def run(program, db_text, facts=None, updates=None, **options):
    database = Database(parse_database(db_text)) if db_text else Database()
    engine = ParkEngine(facts=facts, **options)
    return engine.run(program, database, updates=updates)


class TestFingerprintIdentity:
    @pytest.mark.parametrize("evaluation", STRATEGIES)
    def test_conflict_free_program(self, evaluation):
        base = run(CONFLICT_FREE, CONFLICT_FREE_DB, evaluation=evaluation)
        fast = run(
            CONFLICT_FREE, CONFLICT_FREE_DB, facts=True, evaluation=evaluation
        )
        assert fingerprint(base) == fingerprint(fast)

    @pytest.mark.parametrize("evaluation", STRATEGIES)
    def test_conflicting_program(self, evaluation):
        base = run(CONFLICTING, "", evaluation=evaluation)
        fast = run(CONFLICTING, "", facts=True, evaluation=evaluation)
        assert fingerprint(base) == fingerprint(fast)
        assert fast.blocked  # the conflict really happened

    @pytest.mark.parametrize("evaluation", STRATEGIES)
    def test_each_gate_individually(self, evaluation):
        base = run(CONFLICT_FREE, CONFLICT_FREE_DB, evaluation=evaluation)
        for gate in GATES:
            options = {name: False for name in GATES}
            options[gate] = True
            fast = run(
                CONFLICT_FREE,
                CONFLICT_FREE_DB,
                facts=True,
                evaluation=evaluation,
                **options
            )
            assert fingerprint(base) == fingerprint(fast), gate

    @pytest.mark.parametrize("evaluation", STRATEGIES)
    def test_with_transaction_updates(self, evaluation):
        updates = [Update(UpdateOp.INSERT, parse_atom("edge(d, e)"))]
        base = run(
            CONFLICT_FREE, CONFLICT_FREE_DB, updates=updates,
            evaluation=evaluation,
        )
        fast = run(
            CONFLICT_FREE, CONFLICT_FREE_DB, updates=updates, facts=True,
            evaluation=evaluation,
        )
        assert fingerprint(base) == fingerprint(fast)

    def test_deleting_transaction_disables_conflict_skip(self):
        # The base program is conflict-free but -tc(a, b) in U is not;
        # the engine must re-derive facts for P_U and still detect it.
        updates = [Update(UpdateOp.DELETE, parse_atom("tc(a, b)"))]
        base = run(CONFLICT_FREE, CONFLICT_FREE_DB, updates=updates)
        fast = run(CONFLICT_FREE, CONFLICT_FREE_DB, updates=updates, facts=True)
        assert fingerprint(base) == fingerprint(fast)
        assert base.stats.restarts > 0

    def test_precomputed_facts_accepted(self):
        facts = ProgramFacts.analyze(CONFLICT_FREE)
        base = run(CONFLICT_FREE, CONFLICT_FREE_DB)
        fast = run(CONFLICT_FREE, CONFLICT_FREE_DB, facts=facts)
        assert fingerprint(base) == fingerprint(fast)


class TestPathEngagement:
    def test_conflict_scan_actually_skipped(self):
        # GammaResult with assume_consistent never scans for conflicts.
        result = run(CONFLICT_FREE, CONFLICT_FREE_DB, facts=True)
        assert result.stats.restarts == 0

    def test_assume_consistent_skips_the_scan(self, monkeypatch):
        calls = []
        original = GammaResult._find_conflict_atoms

        def counting(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(GammaResult, "_find_conflict_atoms", counting)
        run(CONFLICT_FREE, CONFLICT_FREE_DB, facts=True)
        assert calls == []
        run(CONFLICT_FREE, CONFLICT_FREE_DB)
        assert calls != []

    def test_metrics_report_engaged_paths(self):
        metrics = Metrics()
        run(CONFLICT_FREE, CONFLICT_FREE_DB, facts=True, metrics=metrics)
        assert metrics.gauges["engine.facts_conflict_free"] == 1
        assert metrics.gauges["engine.facts_dead_rules"] == 1
        assert metrics.gauges["engine.facts_auto_seminaive"] == 1

    def test_auto_seminaive_respects_explicit_strategy(self):
        # An explicit non-naive choice is never overridden.
        metrics = Metrics()
        run(
            CONFLICT_FREE, CONFLICT_FREE_DB, facts=True,
            evaluation="incremental", metrics=metrics,
        )
        assert metrics.gauges["engine.facts_auto_seminaive"] == 0

    def test_facts_off_by_default(self):
        engine = ParkEngine()
        assert engine.facts is None


@pytest.fixture
def backend(request):
    previous = get_matcher_backend()
    set_matcher_backend(request.param)
    clear_compile_cache()
    try:
        yield request.param
    finally:
        set_matcher_backend(previous)
        clear_compile_cache()


class TestGroupBatching:
    """The certified-group collection order is semantics-neutral."""

    @pytest.mark.parametrize("backend", BACKENDS, indirect=True)
    @pytest.mark.parametrize("evaluation", STRATEGIES)
    @pytest.mark.parametrize(
        "program, db_text",
        [(CONFLICT_FREE, CONFLICT_FREE_DB), (CONFLICTING, "")],
        ids=("conflict-free", "conflicting"),
    )
    def test_groups_on_vs_off(self, evaluation, backend, program, db_text):
        base = run(program, db_text, evaluation=evaluation)
        ungrouped = run(
            program, db_text, facts=True, facts_groups=False,
            evaluation=evaluation,
        )
        grouped = run(program, db_text, facts=True, evaluation=evaluation)
        assert fingerprint(base) == fingerprint(ungrouped)
        assert fingerprint(base) == fingerprint(grouped)

    def test_metrics_report_group_engagement(self):
        metrics = Metrics()
        run(CONFLICTING, "", facts=True, metrics=metrics)
        # quickstart-shaped program: two certified groups of two rules.
        assert metrics.gauges["engine.facts_parallel_groups"] == 2
        assert metrics.counters["planner.group_schedules"] == 1
        assert metrics.counters["eval.group_batches"] > 0

    def test_gate_off_skips_schedule(self):
        metrics = Metrics()
        run(CONFLICTING, "", facts=True, facts_groups=False, metrics=metrics)
        assert "planner.group_schedules" not in metrics.counters
        assert "eval.group_batches" not in metrics.counters
