"""ProgramFacts: unification, liveness, conflict pairs, pruning guard."""

import pytest

from repro.lang import parse_database, parse_program
from repro.lang.parser import parse_atom
from repro.lint import ProgramFacts, atoms_may_unify
from repro.storage.database import Database


class TestUnification:
    def test_constants_must_match(self):
        assert not atoms_may_unify(parse_atom("p(a)"), parse_atom("p(b)"))
        assert atoms_may_unify(parse_atom("p(a)"), parse_atom("p(a)"))

    def test_variables_renamed_apart(self):
        # X on the left is unrelated to X on the right.
        assert atoms_may_unify(parse_atom("p(X, a)"), parse_atom("p(b, X)"))

    def test_repeated_variables_constrain(self):
        assert not atoms_may_unify(parse_atom("p(X, X)"), parse_atom("p(a, b)"))
        assert atoms_may_unify(parse_atom("p(X, X)"), parse_atom("p(a, a)"))
        assert atoms_may_unify(parse_atom("p(X, X)"), parse_atom("p(Y, Z)"))

    def test_transitive_bindings(self):
        # X=Y (positionally) then Y=a forces X=a, clashing with b.
        assert not atoms_may_unify(
            parse_atom("p(X, X, b)"), parse_atom("p(Y, a, Y)")
        )

    def test_predicate_and_arity_gate(self):
        assert not atoms_may_unify(parse_atom("p(a)"), parse_atom("q(a)"))
        assert not atoms_may_unify(parse_atom("p(a)"), parse_atom("p(a, b)"))


class TestLiveness:
    def test_everything_live_without_database(self):
        facts = ProgramFacts.analyze(parse_program("mystery(X) -> +q(X)."))
        assert facts.dead == ()
        assert not facts.database_aware

    def test_event_chain_liveness(self):
        text = "p(X) -> +a(X). +a(X) -> +b(X). +b(X) -> +c(X)."
        facts = ProgramFacts.analyze(parse_program(text))
        assert facts.dead == ()
        assert facts.insertable == {"a", "b", "c"}

    def test_deletable_tracked_separately(self):
        facts = ProgramFacts.analyze(parse_program("p(X) -> -q(X)."))
        assert facts.deletable == {"q"}
        assert facts.insertable == frozenset()

    def test_fixpoint_with_database(self):
        db = Database(parse_database("seed(a)."))
        text = "seed(X) -> +step1(X). step1(X) -> +step2(X). other(X) -> +r(X)."
        facts = ProgramFacts.analyze(parse_program(text), database=db)
        assert facts.dead == (2,)
        assert facts.live == {0, 1}


class TestConflictFreedom:
    def test_matches_guards_staleness(self):
        program = parse_program("p(X) -> +q(X).")
        other = parse_program("p(X) -> +r(X).")
        facts = ProgramFacts.analyze(program)
        assert facts.matches(program)
        assert not facts.matches(other)
        with pytest.raises(ValueError):
            facts.live_program(other)

    def test_live_program_prunes_only_dead(self):
        db = Database(parse_database("p(a)."))
        program = parse_program("p(X) -> +q(X). ghost(X) -> +r(X).")
        facts = ProgramFacts.analyze(program, database=db)
        pruned = facts.live_program(program)
        assert len(pruned) == 1
        assert tuple(pruned)[0] is tuple(program)[0]

    def test_live_program_identity_when_nothing_dead(self):
        program = parse_program("p(X) -> +q(X).")
        facts = ProgramFacts.analyze(program)
        assert facts.live_program(program) is program

    def test_to_json_shape(self):
        facts = ProgramFacts.analyze(
            parse_program("p(X) -> +q(X). p(X) -> -q(X).")
        )
        record = facts.to_json()
        assert record["conflict_free"] is False
        assert record["conflict_pairs"] == [
            {"predicate": "q", "insert_rules": [0], "delete_rules": [1]}
        ]

    def test_transaction_rules_change_the_answer(self):
        # The base program is conflict-free; P_U with a -q update is not.
        from repro.core.eca import extend_with_updates
        from repro.lang.updates import Update, UpdateOp

        program = parse_program("p(X) -> +q(X).")
        base = ProgramFacts.analyze(program)
        assert base.conflict_free
        extended = extend_with_updates(
            program, [Update(UpdateOp.DELETE, parse_atom("q(a)"))]
        )
        assert not ProgramFacts.analyze(extended).conflict_free
