"""The ``repro check`` subcommand: output forms, gating, golden files."""

import io
import json
import os
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestGoldenJson:
    """Golden-file tests for ``repro check --json`` on ``examples/``."""

    @pytest.mark.parametrize("name", ["quickstart", "payroll"])
    def test_examples_json_matches_golden(self, name, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code, output = run_cli(
            "check", "--json", "examples/%s.park" % name
        )
        assert code == 0
        golden = json.loads((GOLDEN_DIR / ("%s.json" % name)).read_text())
        assert json.loads(output) == golden


class TestHumanOutput:
    def test_classification_block_preserved(self, tmp_path):
        rules = tmp_path / "rules.park"
        rules.write_text("p -> +q. p -> -a. q -> +a.")
        code, output = run_cli("check", "--rules", str(rules))
        assert code == 0
        assert "rules      : 3" in output
        assert "uses delete: True" in output
        assert "conflict-free: False" in output

    def test_diagnostics_located_in_output(self, tmp_path):
        rules = tmp_path / "bad.park"
        rules.write_text("p(X) -> +q(X, Y).")
        code, output = run_cli("check", str(rules))
        assert code == 1
        assert "%s:1:" % rules in output
        assert "error[PARK002]" in output

    def test_multi_file_summary(self, tmp_path):
        for name in ("a", "b"):
            (tmp_path / ("%s.park" % name)).write_text("p(X) -> +q(X).")
        code, output = run_cli("check", str(tmp_path))
        assert code == 0
        assert "total: 2 file(s)" in output


class TestGating:
    def test_errors_always_exit_one(self, tmp_path):
        rules = tmp_path / "bad.park"
        rules.write_text("p(X) -> +q(X, Y).")
        assert run_cli("check", str(rules))[0] == 1

    def test_warnings_gate_only_under_strict(self, tmp_path):
        rules = tmp_path / "warn.park"
        rules.write_text("p(X), +never(X) -> +q(X).")  # PARK031 warning
        assert run_cli("check", str(rules))[0] == 0
        assert run_cli("check", "--strict", str(rules))[0] == 1

    def test_info_never_gates(self, tmp_path):
        rules = tmp_path / "info.park"
        rules.write_text("p(X) -> +f(X). p(X), not ok(X) -> -f(X).")
        assert run_cli("check", "--strict", str(rules))[0] == 0

    def test_json_summary_records_strictness(self, tmp_path):
        rules = tmp_path / "warn.park"
        rules.write_text("p(X), +never(X) -> +q(X).")
        code, output = run_cli("check", "--strict", "--json", str(rules))
        assert code == 1
        summary = json.loads(output)["summary"]
        assert summary["strict"] is True
        assert summary["exit_code"] == 1
        assert summary["warnings"] == 1


class TestInputs:
    def test_directory_expansion(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code, output = run_cli("check", "examples")
        assert code == 0
        assert "examples%squickstart.park" % os.sep in output
        assert "examples%spayroll.park" % os.sep in output

    def test_empty_directory_errors(self, tmp_path):
        assert run_cli("check", str(tmp_path))[0] == 2

    def test_no_paths_errors(self):
        assert run_cli("check")[0] == 2

    def test_policy_flag_enables_policy_diagnostics(self, tmp_path):
        rules = tmp_path / "c.park"
        rules.write_text("p(X) -> +f(X). p(X), not ok(X) -> -f(X).")
        _, plain = run_cli("check", str(rules))
        assert "PARK021" not in plain
        _, with_policy = run_cli("check", "--policy", "priority", str(rules))
        assert "PARK021" in with_policy

    def test_db_flag_sharpens_dead_rules(self, tmp_path):
        rules = tmp_path / "d.park"
        rules.write_text("p(X) -> +q(X). ghost(X) -> +r(X).")
        facts = tmp_path / "facts.park"
        facts.write_text("p(a).")
        _, plain = run_cli("check", str(rules))
        assert "PARK030" not in plain
        _, with_db = run_cli("check", "--db", str(facts), str(rules))
        assert "PARK030" in with_db


class TestStdin:
    """Regression: stdin input is reported as ``<stdin>``, read only once."""

    def stdin(self, monkeypatch, text):
        monkeypatch.setattr("sys.stdin", io.StringIO(text))

    def test_text_output_locates_diagnostics_in_stdin(self, monkeypatch):
        self.stdin(monkeypatch, "p(X) -> +q(X, Y).")
        code, output = run_cli("check", "-")
        assert code == 1
        assert "<stdin>:1:" in output
        assert "error[PARK002]" in output

    def test_json_output_names_stdin(self, monkeypatch):
        self.stdin(monkeypatch, "p(X) -> +q(X).")
        code, output = run_cli("check", "--json", "-")
        assert code == 0
        (entry,) = json.loads(output)["files"]
        assert entry["path"] == "<stdin>"

    def test_repeated_dash_reads_stdin_once(self, monkeypatch):
        # stdin can only be consumed once; "check - -" must not try twice.
        self.stdin(monkeypatch, "p(X) -> +q(X).")
        code, output = run_cli("check", "--json", "-", "-")
        assert code == 0
        report = json.loads(output)
        assert [entry["path"] for entry in report["files"]] == ["<stdin>"]
        assert report["summary"]["files"] == 1

    def test_stdin_mixes_with_file_paths(self, tmp_path, monkeypatch):
        rules = tmp_path / "ok.park"
        rules.write_text("a(X) -> +b(X).")
        self.stdin(monkeypatch, "p(X) -> +q(X).")
        code, output = run_cli("check", "--json", str(rules), "-")
        assert code == 0
        paths = [entry["path"] for entry in json.loads(output)["files"]]
        assert paths == [str(rules), "<stdin>"]


class TestRunSafetyWarning:
    """Satellite: run/profile warn on unsafe rules instead of failing."""

    def test_run_warns_once_and_continues(self, tmp_path, capsys):
        rules = tmp_path / "mixed.park"
        rules.write_text("@name(bad) p(X) -> +q(X, Y).\n@name(ok) p(X) -> +r(X).\n")
        facts = tmp_path / "facts.park"
        facts.write_text("p(a).")
        code, output = run_cli(
            "run", "--rules", str(rules), "--db", str(facts)
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "r(a)" in output
        assert captured.err.count("unsafe rule(s) excluded") == 1
        assert "repro check" in captured.err

    def test_profile_warns_too(self, tmp_path, capsys):
        rules = tmp_path / "mixed.park"
        rules.write_text("p(X) -> +q(X, Y).\n-> +seed(a).\n")
        code, _ = run_cli("profile", str(rules))
        assert code == 0
        assert "unsafe rule(s) excluded" in capsys.readouterr().err

    def test_syntax_errors_still_fail(self, tmp_path):
        rules = tmp_path / "broken.park"
        rules.write_text("p( ->")
        facts = tmp_path / "facts.park"
        facts.write_text("p(a).")
        code, _ = run_cli("run", "--rules", str(rules), "--db", str(facts))
        assert code == 2
