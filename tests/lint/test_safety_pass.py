"""Safety pass: PARK002 (unsafe head) and PARK003 (unsafe negation)."""

from repro.lint import analyze_text


def codes(report):
    return [d.code for d in report.diagnostics]


class TestUnsafeHead:
    def test_park002_reported_with_span(self):
        report = analyze_text("@name(bad) p(X) -> +q(X, Y).")
        (diag,) = report.diagnostics
        assert diag.code == "PARK002"
        assert diag.severity == "error"
        assert "Y" in diag.message
        assert diag.rule == "bad"
        assert diag.rule_index == 0
        # span points at the head, after the arrow
        assert diag.span.line == 1
        assert diag.span.column > len("@name(bad) p(X) ")

    def test_every_unbound_variable_listed(self):
        report = analyze_text("p(X) -> +q(Y, Z).")
        (diag,) = report.diagnostics
        assert diag.code == "PARK002"
        assert "Y" in diag.message and "Z" in diag.message

    def test_event_literals_bind(self):
        # Events are matched against the marked sets, so they bind.  The
        # only finding is the commutativity pass's (info) read-write
        # coupling — each rule's head feeds the other's body.
        report = analyze_text("q(Y) -> +p(Y). +p(X) -> +q(X).")
        assert codes(report) == ["PARK040"]


class TestUnsafeNegation:
    def test_park003_reported_per_literal(self):
        report = analyze_text("@name(neg) p(X), not r(X, Z) -> +s(X).")
        (diag,) = report.diagnostics
        assert diag.code == "PARK003"
        assert diag.severity == "error"
        assert "Z" in diag.message
        assert diag.rule_index == 0
        # span points at the negated literal, not the rule start
        assert diag.span.column == len("@name(neg) p(X), ") + 1

    def test_multiple_unsafe_rules_all_reported(self):
        text = "p(X) -> +q(X, Y).\np(X), not r(Z) -> +s(X).\n"
        report = analyze_text(text)
        assert codes(report) == ["PARK002", "PARK003"]
        assert [d.span.line for d in report.diagnostics] == [1, 2]

    def test_safe_program_is_clean(self):
        report = analyze_text("p(X), not r(X) -> +q(X).")
        assert codes(report) == []
