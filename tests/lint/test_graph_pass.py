"""Dependency pass: PARK010 (not stratifiable), PARK011 (not semipositive)."""

from repro.lint import analyze_text


def codes(report):
    return [d.code for d in report.diagnostics]


class TestStratifiability:
    def test_park010_on_negative_self_dependency(self):
        report = analyze_text("@name(r) p(X), not q(X) -> +q(X).")
        assert "PARK010" in codes(report)
        (diag,) = [d for d in report.diagnostics if d.code == "PARK010"]
        assert diag.severity == "warning"
        assert "'q'" in diag.message
        assert diag.rule == "r"
        # span points at the negated literal
        assert diag.span.column == len("@name(r) p(X), ") + 1
        assert not report.facts.stratifiable

    def test_park010_through_a_cycle(self):
        text = "a(X), not b(X) -> +c(X). c(X) -> +b(X)."
        report = analyze_text(text)
        assert "PARK010" in codes(report)

    def test_stratifiable_negation_is_not_flagged(self):
        report = analyze_text("p(X), not q(X) -> +r(X). s(X) -> +q(X).")
        assert "PARK010" not in codes(report)
        assert report.facts.stratifiable


class TestSemipositivity:
    def test_park011_on_derived_negation(self):
        report = analyze_text("s(X) -> +q(X). p(X), not q(X) -> +r(X).")
        (diag,) = [d for d in report.diagnostics if d.code == "PARK011"]
        assert diag.severity == "info"
        assert "'q'" in diag.message
        assert not report.facts.semipositive

    def test_edb_negation_is_semipositive(self):
        report = analyze_text("p(X), not edb(X) -> +r(X).")
        assert "PARK011" not in codes(report)
        assert report.facts.semipositive

    def test_park011_suppressed_when_park010_covers_the_edge(self):
        # The in-SCC negation is reported once, as PARK010.
        report = analyze_text("p(X), not q(X) -> +q(X).")
        assert codes(report).count("PARK010") == 1
        assert "PARK011" not in codes(report)
