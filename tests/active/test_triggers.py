"""Tests for the trigger builder."""

import pytest

from repro.active import ActiveDatabase
from repro.active.triggers import immediately, on
from repro.errors import LanguageError
from repro.lang import parse_rule
from repro.lang.builder import Pred

order = Pred("order")
stock = Pred("stock")
backlog = Pred("backlog")
audit = Pred("audit")


class TestBuilding:
    def test_on_insert_event_trigger(self):
        rule = (
            on(+order("Id", "Item"))
            .if_(stock("Item"))
            .then("+", audit("Id"), name="t1")
        )
        assert rule == parse_rule(
            "@name(t1) +order(Id, Item), stock(Item) -> +audit(Id)."
        )

    def test_on_delete_via_method(self):
        rule = on().on_delete(stock("Item").atom).then("+", backlog("Item"))
        assert rule == parse_rule("-stock(Item) -> +backlog(Item).")

    def test_immediately_condition_action(self):
        rule = immediately(stock("Item"), ~backlog("Item")).then("-", stock("Item"))
        assert rule == parse_rule(
            "stock(Item), not backlog(Item) -> -stock(Item)."
        )

    def test_priority_and_name(self):
        rule = on(+order("I", "X")).then("+", audit("I"), name="t", priority=7)
        assert (rule.name, rule.priority) == ("t", 7)

    def test_event_expressions_only_in_on(self):
        with pytest.raises(LanguageError, match="event expressions"):
            on(stock("Item"))

    def test_signed_expression_in_then(self):
        rule = on(-order("I", "X")).then(+backlog.X)
        assert rule == parse_rule("-order(I, X) -> +backlog(X).")


class TestIntegration:
    def test_trigger_registered_and_fired(self):
        db = ActiveDatabase.from_text("stock(widget).")
        db.add_rule(
            on(-stock("Item")).then("+", backlog("Item"), name="restock")
        )
        db.delete("stock", "widget")
        assert db.rows("backlog") == [("widget",)]

    def test_chained_triggers(self):
        db = ActiveDatabase()
        db.add_rule(on(+order("Id", "Item")).then("+", audit("Id"), name="t1"))
        db.add_rule(
            on(+audit("Id")).then("+", Pred("notified")("Id"), name="t2")
        )
        db.insert("order", 1, "widget")
        assert db.rows("notified") == [(1,)]
