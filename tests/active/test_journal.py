"""Tests for the commit journal and recovery."""

import pytest

from repro.active import ActiveDatabase
from repro.active.journal import Journal
from repro.errors import StorageError
from repro.lang.atoms import atom
from repro.lang.updates import delete, insert
from repro.storage.database import Database
from repro.storage.delta import Delta

RULES = "@name(cleanup) emp(X), not active(X), payroll(X, S) -> -payroll(X, S)."


def make_db(tmp_path, journal=True):
    db = ActiveDatabase.from_text(
        "emp(joe). active(joe). payroll(joe, 10).",
        journal=str(tmp_path / "commits.journal") if journal else None,
    )
    db.add_rule(RULES)
    return db


class TestJournalFile:
    def test_append_and_read(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"))
        journal.append(1, (insert(atom("p", "a")),), Delta([insert(atom("p", "a"))]))
        journal.append(
            2, (delete(atom("p", "a")),), Delta([delete(atom("p", "a"))])
        )
        records = journal.records()
        assert [r.transaction_id for r in records] == [1, 2]
        assert records[0].delta.inserts == frozenset({atom("p", "a")})

    def test_missing_file_is_empty(self, tmp_path):
        assert Journal(str(tmp_path / "absent.log")).records() == []

    def test_replay(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"))
        journal.append(1, (), Delta([insert(atom("p"))]))
        journal.append(2, (), Delta([insert(atom("q")), delete(atom("p"))]))
        replayed = journal.replay(Database(), in_place=False)
        assert replayed == Database.from_text("q.")

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.log"
        journal = Journal(str(path))
        journal.append(1, (), Delta([insert(atom("p"))]))
        with open(path, "a") as handle:
            handle.write("tx=2|requested=")  # crash mid-append
        records = journal.records()
        assert [r.transaction_id for r in records] == [1]
        assert journal.corrupt_tail is not None

    def test_corruption_in_middle_raises(self, tmp_path):
        path = tmp_path / "j.log"
        journal = Journal(str(path))
        journal.append(1, (), Delta([insert(atom("p"))]))
        with open(path, "a") as handle:
            handle.write("garbage line\n")
        with open(path, "a") as handle:
            handle.write("tx=3|requested=|applied=+q\n")
        with pytest.raises(StorageError):
            journal.records()

    def test_torn_tail_followed_by_blank_lines_tolerated(self, tmp_path):
        # A bad line used to be tolerated only at the literal last index,
        # so trailing blank line(s) after a torn record blocked recovery.
        path = tmp_path / "j.log"
        journal = Journal(str(path))
        journal.append(1, (), Delta([insert(atom("p"))]))
        with open(path, "a") as handle:
            handle.write("v2|tx=2|len=999")  # torn mid-append
            handle.write("\n\n  \n")  # trailing blanks
        reread = Journal(str(path))
        assert [r.transaction_id for r in reread.records()] == [1]
        assert reread.corrupt_tail is not None

    def test_unterminated_final_record_is_torn(self, tmp_path):
        # A record missing only its trailing newline parses, but the next
        # append would concatenate onto it — it must count as torn and be
        # truncated before new records are written.
        path = tmp_path / "j.log"
        journal = Journal(str(path))
        journal.append(1, (), Delta([insert(atom("p"))]))
        journal.append(2, (), Delta([insert(atom("q"))]))
        data = path.read_bytes()
        path.write_bytes(data[:-1])  # strip the final newline
        reread = Journal(str(path))
        assert [r.transaction_id for r in reread.records()] == [1]
        assert reread.corrupt_tail is not None
        reread.append(3, (), Delta([insert(atom("r"))]))
        final = Journal(str(path))
        assert [r.transaction_id for r in final.records()] == [1, 3]
        assert final.corrupt_tail is None

    def test_repair_tail_truncates_and_is_idempotent(self, tmp_path):
        path = tmp_path / "j.log"
        journal = Journal(str(path))
        journal.append(1, (), Delta([insert(atom("p"))]))
        clean_size = path.stat().st_size
        with open(path, "a") as handle:
            handle.write("v2|tx=2|len=")
        repairer = Journal(str(path))
        assert repairer.repair_tail() is True
        assert path.stat().st_size == clean_size
        assert repairer.repair_tail() is False
        assert Journal(str(path)).repair_tail() is False

    def test_len_is_cached_after_first_scan(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"))
        journal.append(1, (), Delta([insert(atom("p"))]))
        assert len(journal) == 1
        journal.append(2, (), Delta([insert(atom("q"))]))
        # append keeps the cached count current without re-parsing
        assert journal._count == 2
        assert len(journal) == 2
        journal.truncate()
        assert len(journal) == 0


class TestVersionCompatibility:
    V1_LINES = (
        "tx=1|requested=+emp(joe)|applied=+emp(joe);+audit(joe)\n"
        "tx=2|requested=-emp(joe)|applied=-emp(joe)\n"
    )

    def test_v1_journal_still_reads(self, tmp_path):
        path = tmp_path / "v1.journal"
        path.write_text(self.V1_LINES)
        records = Journal(str(path)).records()
        assert [r.transaction_id for r in records] == [1, 2]
        assert [r.version for r in records] == [1, 1]
        assert atom("audit", "joe") in records[0].delta.inserts

    def test_appending_to_a_v1_journal_writes_v2(self, tmp_path):
        path = tmp_path / "v1.journal"
        path.write_text(self.V1_LINES)
        journal = Journal(str(path))
        journal.append(3, (), Delta([insert(atom("note", "a|b"))]))
        records = Journal(str(path)).records()
        assert [r.version for r in records] == [1, 1, 2]
        assert atom("note", "a|b") in records[2].delta.inserts

    def test_v1_journal_recovers_into_activedb(self, tmp_path):
        from repro.storage.textio import dump_database

        snapshot = tmp_path / "base.park"
        dump_database(Database(), str(snapshot))
        path = tmp_path / "v1.journal"
        path.write_text(self.V1_LINES)
        recovered = ActiveDatabase.recover(str(snapshot), str(path))
        assert recovered.rows("audit") == [("joe",)]
        assert recovered.rows("emp") == []
        assert recovered._next_tx == 3

    def test_quoted_constants_roundtrip(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"))
        fancy = atom("note", "two words")
        journal.append(1, (insert(fancy),), Delta([insert(fancy)]))
        (record,) = journal.records()
        assert fancy in record.delta.inserts

    @pytest.mark.parametrize(
        "value",
        [
            "pipe|inside",
            "semi;colon",
            "line\nbreak",
            "cr\rhere",
            "percent 100%",
            "escaped %7C literal",
            'quo"te\\back',
            "tab\tstop",
            "all|of;it\n%7C%0A\\together",
        ],
    )
    def test_structural_bytes_in_constants_roundtrip(self, tmp_path, value):
        # v1 corrupted on | ; and newline inside quoted constants; v2
        # framing must round-trip every one of them bit-exactly.
        journal = Journal(str(tmp_path / "j.log"))
        nasty = atom("note", value, "plain")
        journal.append(
            1, (insert(nasty),), Delta([insert(nasty), delete(atom("p"))])
        )
        (record,) = Journal(str(tmp_path / "j.log")).records()
        assert record.requested == (insert(nasty),)
        assert nasty in record.delta.inserts
        assert atom("p") in record.delta.deletes

    def test_records_are_one_line_each(self, tmp_path):
        path = tmp_path / "j.log"
        journal = Journal(str(path))
        nasty = atom("note", "a|b;c\nd")
        journal.append(1, (insert(nasty),), Delta([insert(nasty)]))
        journal.append(2, (), Delta([insert(atom("q"))]))
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 2
        assert all(line.startswith("v2|") for line in lines)

    def test_crc_detects_bit_rot(self, tmp_path):
        path = tmp_path / "j.log"
        journal = Journal(str(path))
        journal.append(1, (), Delta([insert(atom("p", "aa"))]))
        data = bytearray(path.read_bytes())
        data[-5] ^= 0x01  # flip one payload bit, keep the length intact
        path.write_bytes(bytes(data))
        reread = Journal(str(path))
        assert reread.records() == []  # sole record = tail, tolerated
        assert reread.corrupt_tail is not None

    def test_truncate(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"))
        journal.append(1, (), Delta([insert(atom("p"))]))
        journal.truncate()
        assert len(journal) == 0


class TestActiveDatabaseIntegration:
    def test_commits_are_journaled(self, tmp_path):
        db = make_db(tmp_path)
        db.delete("active", "joe")
        (record,) = db.journal.records()
        assert record.transaction_id == 1
        assert atom("payroll", "joe", 10) in record.delta.deletes

    def test_recover_reproduces_state(self, tmp_path):
        snapshot = tmp_path / "base.park"
        db = make_db(tmp_path)
        db.checkpoint(str(snapshot))  # checkpoint the initial state
        db.delete("active", "joe")
        db.insert("emp", "ann")

        recovered = ActiveDatabase.recover(
            str(snapshot), str(tmp_path / "commits.journal"), rules=[]
        )
        assert recovered.database == db.database
        # transaction numbering continues after the journaled history
        assert recovered._next_tx == 3

    def test_checkpoint_truncates_journal(self, tmp_path):
        db = make_db(tmp_path)
        db.delete("active", "joe")
        snapshot = tmp_path / "base.park"
        db.checkpoint(str(snapshot))
        assert len(db.journal) == 0
        recovered = ActiveDatabase.recover(
            str(snapshot), str(tmp_path / "commits.journal")
        )
        assert recovered.database == db.database

    def test_recovery_ignores_rule_changes(self, tmp_path):
        # Replaying deltas (not rules) makes recovery independent of the
        # current rule set.
        snapshot = tmp_path / "base.park"
        db = make_db(tmp_path)
        db.checkpoint(str(snapshot))
        db.delete("active", "joe")
        recovered = ActiveDatabase.recover(
            str(snapshot),
            str(tmp_path / "commits.journal"),
            rules=["p0 -> +q0."],  # different rules entirely
        )
        assert recovered.database == db.database

    def test_no_journal_by_default(self, tmp_path):
        db = make_db(tmp_path, journal=False)
        db.delete("active", "joe")
        assert db.journal is None

    def test_recover_with_corrupt_tail_repairs_and_continues(self, tmp_path):
        snapshot = tmp_path / "base.park"
        journal_path = tmp_path / "commits.journal"
        db = make_db(tmp_path)
        db.checkpoint(str(snapshot))
        db.delete("active", "joe")
        expected = db.database.copy()
        with open(journal_path, "a") as handle:
            handle.write("v2|tx=2|len=55|crc=0000")  # crash mid-append
        recovered = ActiveDatabase.recover(str(snapshot), str(journal_path))
        assert recovered.database == expected
        assert recovered._next_tx == 2
        # the torn bytes were truncated during recover, not left to be
        # concatenated onto by the next commit
        recovered.insert("emp", "ann")
        records = Journal(str(journal_path)).records()
        assert [r.transaction_id for r in records] == [1, 2]

    def test_recover_after_mid_history_checkpoint(self, tmp_path):
        snapshot = tmp_path / "base.park"
        journal_path = tmp_path / "commits.journal"
        db = make_db(tmp_path)
        db.delete("active", "joe")  # journaled, then folded into the...
        db.checkpoint(str(snapshot))  # ...snapshot; journal truncated
        assert len(db.journal) == 0
        db.insert("emp", "ann")  # only this commit is journaled
        recovered = ActiveDatabase.recover(str(snapshot), str(journal_path))
        assert recovered.database == db.database
        # numbering continues from the journaled suffix, not from 1
        assert recovered._next_tx == 3

    def test_recover_next_tx_from_empty_journal(self, tmp_path):
        snapshot = tmp_path / "base.park"
        db = make_db(tmp_path)
        db.checkpoint(str(snapshot))
        recovered = ActiveDatabase.recover(
            str(snapshot), str(tmp_path / "commits.journal")
        )
        assert recovered._next_tx == 1
        assert recovered.database == db.database

    def test_recover_parses_the_journal_once(self, tmp_path, monkeypatch):
        # recover used to call journal.records() twice (replay + tx ids)
        snapshot = tmp_path / "base.park"
        db = make_db(tmp_path)
        db.checkpoint(str(snapshot))
        db.delete("active", "joe")
        calls = []
        original = Journal._scan

        def counting_scan(self):
            calls.append(self.path)
            return original(self)

        monkeypatch.setattr(Journal, "_scan", counting_scan)
        ActiveDatabase.recover(str(snapshot), str(tmp_path / "commits.journal"))
        assert len(calls) == 1

    def test_group_commit_convenience(self, tmp_path):
        db = make_db(tmp_path)
        with db.group_commit(4):
            for index in range(6):
                db.insert("emp", "bulk_%d" % index)
        assert len(db.journal) == 6
        assert len(Journal(str(tmp_path / "commits.journal")).records()) == 6

    def test_group_commit_without_journal_is_noop(self, tmp_path):
        db = make_db(tmp_path, journal=False)
        with db.group_commit(4):
            db.insert("emp", "ann")
        assert db.contains("emp", "ann")


def _record(journal, tx_id, name):
    update = insert(atom("p", name))
    journal.append(tx_id, (update,), Delta([update]))


class TestGroupCommitEdges:
    """Edge cases the fault-injection suite does not reach directly."""

    @pytest.mark.parametrize("size", [0, -1, -100])
    def test_nonpositive_size_clamps_to_one(self, tmp_path, size):
        journal = Journal(str(tmp_path / "j.log"))
        with journal.group_commit(size):
            assert journal._group_size == 1
            _record(journal, 1, "a")
            # Size 1 means every append syncs immediately: nothing defers.
            assert journal._pending_syncs == 0
        assert journal._group_size == 1
        assert len(journal.records()) == 1

    def test_exception_restores_size_and_syncs_prefix(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"))
        with pytest.raises(RuntimeError):
            with journal.group_commit(10):
                _record(journal, 1, "a")
                _record(journal, 2, "b")
                assert journal._pending_syncs == 2  # deferred inside the block
                raise RuntimeError("crash mid-batch")
        # The context manager restored the immediate-sync default and
        # flushed the written prefix on the way out.
        assert journal._group_size == 1
        assert journal._pending_syncs == 0
        assert [record.transaction_id for record in journal.records()] == [1, 2]

    def test_nested_group_commit_restores_outer_size(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"))
        with journal.group_commit(4):
            assert journal._group_size == 4
            with journal.group_commit(8):
                assert journal._group_size == 8
                _record(journal, 1, "a")
            # Inner exit restores the *outer* batch size, not the default,
            # and syncs what the inner block deferred.
            assert journal._group_size == 4
            assert journal._pending_syncs == 0
            _record(journal, 2, "b")
        assert journal._group_size == 1
        assert journal._pending_syncs == 0
        assert [record.transaction_id for record in journal.records()] == [1, 2]
