"""Tests for the commit journal and recovery."""

import pytest

from repro.active import ActiveDatabase
from repro.active.journal import Journal
from repro.errors import StorageError
from repro.lang.atoms import atom
from repro.lang.updates import delete, insert
from repro.storage.database import Database
from repro.storage.delta import Delta

RULES = "@name(cleanup) emp(X), not active(X), payroll(X, S) -> -payroll(X, S)."


def make_db(tmp_path, journal=True):
    db = ActiveDatabase.from_text(
        "emp(joe). active(joe). payroll(joe, 10).",
        journal=str(tmp_path / "commits.journal") if journal else None,
    )
    db.add_rule(RULES)
    return db


class TestJournalFile:
    def test_append_and_read(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"))
        journal.append(1, (insert(atom("p", "a")),), Delta([insert(atom("p", "a"))]))
        journal.append(
            2, (delete(atom("p", "a")),), Delta([delete(atom("p", "a"))])
        )
        records = journal.records()
        assert [r.transaction_id for r in records] == [1, 2]
        assert records[0].delta.inserts == frozenset({atom("p", "a")})

    def test_missing_file_is_empty(self, tmp_path):
        assert Journal(str(tmp_path / "absent.log")).records() == []

    def test_replay(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"))
        journal.append(1, (), Delta([insert(atom("p"))]))
        journal.append(2, (), Delta([insert(atom("q")), delete(atom("p"))]))
        replayed = journal.replay(Database(), in_place=False)
        assert replayed == Database.from_text("q.")

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.log"
        journal = Journal(str(path))
        journal.append(1, (), Delta([insert(atom("p"))]))
        with open(path, "a") as handle:
            handle.write("tx=2|requested=")  # crash mid-append
        records = journal.records()
        assert [r.transaction_id for r in records] == [1]
        assert journal.corrupt_tail is not None

    def test_corruption_in_middle_raises(self, tmp_path):
        path = tmp_path / "j.log"
        journal = Journal(str(path))
        journal.append(1, (), Delta([insert(atom("p"))]))
        with open(path, "a") as handle:
            handle.write("garbage line\n")
        journal.append(3, (), Delta([insert(atom("q"))]))
        with pytest.raises(StorageError):
            journal.records()

    def test_quoted_constants_roundtrip(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"))
        fancy = atom("note", "two words")
        journal.append(1, (insert(fancy),), Delta([insert(fancy)]))
        (record,) = journal.records()
        assert fancy in record.delta.inserts

    def test_truncate(self, tmp_path):
        journal = Journal(str(tmp_path / "j.log"))
        journal.append(1, (), Delta([insert(atom("p"))]))
        journal.truncate()
        assert len(journal) == 0


class TestActiveDatabaseIntegration:
    def test_commits_are_journaled(self, tmp_path):
        db = make_db(tmp_path)
        db.delete("active", "joe")
        (record,) = db.journal.records()
        assert record.transaction_id == 1
        assert atom("payroll", "joe", 10) in record.delta.deletes

    def test_recover_reproduces_state(self, tmp_path):
        snapshot = tmp_path / "base.park"
        db = make_db(tmp_path)
        db.checkpoint(str(snapshot))  # checkpoint the initial state
        db.delete("active", "joe")
        db.insert("emp", "ann")

        recovered = ActiveDatabase.recover(
            str(snapshot), str(tmp_path / "commits.journal"), rules=[]
        )
        assert recovered.database == db.database
        # transaction numbering continues after the journaled history
        assert recovered._next_tx == 3

    def test_checkpoint_truncates_journal(self, tmp_path):
        db = make_db(tmp_path)
        db.delete("active", "joe")
        snapshot = tmp_path / "base.park"
        db.checkpoint(str(snapshot))
        assert len(db.journal) == 0
        recovered = ActiveDatabase.recover(
            str(snapshot), str(tmp_path / "commits.journal")
        )
        assert recovered.database == db.database

    def test_recovery_ignores_rule_changes(self, tmp_path):
        # Replaying deltas (not rules) makes recovery independent of the
        # current rule set.
        snapshot = tmp_path / "base.park"
        db = make_db(tmp_path)
        db.checkpoint(str(snapshot))
        db.delete("active", "joe")
        recovered = ActiveDatabase.recover(
            str(snapshot),
            str(tmp_path / "commits.journal"),
            rules=["p0 -> +q0."],  # different rules entirely
        )
        assert recovered.database == db.database

    def test_no_journal_by_default(self, tmp_path):
        db = make_db(tmp_path, journal=False)
        db.delete("active", "joe")
        assert db.journal is None
