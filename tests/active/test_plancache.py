"""Tests for the cross-transaction plan cache.

An :class:`~repro.active.activedb.ActiveDatabase` re-runs one rule
program on every commit; the :class:`~repro.engine.plancache.PlanCache`
must make the second and later commits of an unchanged program skip
program analysis entirely (a cache *hit*), while a program edit or a
data magnitude change (the stats signature buckets row counts by bit
length) forces a re-derivation (*miss* / *invalidation*).  The counters
asserted here are the ones ``repro profile`` reports.
"""

from repro.active import ActiveDatabase
from repro.engine.plancache import PlanCache
from repro.lang import parse_program
from repro.obs import Metrics
from repro.storage.database import Database


def _program(text="emp(X), not active(X) -> -emp(X)."):
    return parse_program(text)


class TestPlanCacheUnit:
    def test_miss_then_hit(self):
        cache = PlanCache()
        program = _program()
        database = Database.from_text("emp(joe). active(joe).")
        metrics = Metrics()
        with metrics.activate():
            first = cache.facts_for(program, database)
            second = cache.facts_for(program, database)
        assert second is first
        assert metrics.counters["plan_cache.misses"] == 1
        assert metrics.counters["plan_cache.hits"] == 1
        assert "plan_cache.invalidations" not in metrics.counters
        assert len(cache) == 1

    def test_different_program_is_a_second_entry(self):
        cache = PlanCache()
        database = Database.from_text("emp(joe).")
        facts_a = cache.facts_for(_program("emp(X) -> +seen(X)."), database)
        facts_b = cache.facts_for(_program("emp(X) -> -emp(X)."), database)
        assert facts_a is not facts_b
        assert len(cache) == 2

    def test_reparsed_identical_program_hits(self):
        # Rules hash by value, so a re-parse of the same text is the same key.
        cache = PlanCache()
        database = Database.from_text("emp(joe).")
        metrics = Metrics()
        with metrics.activate():
            first = cache.facts_for(_program(), database)
            second = cache.facts_for(_program(), database)
        assert second is first
        assert metrics.counters["plan_cache.hits"] == 1

    def test_magnitude_change_invalidates(self):
        cache = PlanCache()
        program = _program()
        small = Database.from_text("emp(joe).")
        grown = Database.from_text("emp(joe). emp(ann). emp(bob).")
        metrics = Metrics()
        with metrics.activate():
            first = cache.facts_for(program, small)
            second = cache.facts_for(program, grown)
            third = cache.facts_for(program, grown)
        # 1 row -> 3 rows crosses a bit-length bucket (1 -> 2): re-derive.
        assert second is not first
        assert third is second
        assert metrics.counters["plan_cache.misses"] == 1
        assert metrics.counters["plan_cache.invalidations"] == 1
        assert metrics.counters["plan_cache.hits"] == 1
        assert len(cache) == 1  # re-derived in place, not a second entry

    def test_small_drift_within_bucket_still_hits(self):
        cache = PlanCache()
        program = _program()
        two = Database.from_text("emp(joe). emp(ann).")
        three = Database.from_text("emp(joe). emp(ann). emp(bob).")
        first = cache.facts_for(program, two)
        # 2 and 3 rows share bit-length bucket 2: the plan survives.
        assert cache.facts_for(program, three) is first

    def test_empty_to_nonempty_invalidates(self):
        # Bucket 0 is exactly "empty" — the one data property the analysis
        # consumes (liveness sharpening), so it must never be smeared.
        cache = PlanCache()
        program = _program("emp(X), flagged(X) -> -emp(X).")
        without = Database.from_text("emp(joe).")
        with_flag = Database.from_text("emp(joe). flagged(joe).")
        first = cache.facts_for(program, without)
        second = cache.facts_for(program, with_flag)
        assert second is not first

    def test_emptied_predicate_signs_like_absent(self):
        # Regression: ``Database.predicates()`` still lists a relation whose
        # rows were all deleted.  The signature must drop zero-count
        # predicates, or an insert-then-delete-all history would sign
        # differently from a fresh database the analysis cannot
        # distinguish it from — spuriously invalidating identical re-runs.
        program = _program()
        fresh = Database.from_text("emp(joe).")
        emptied = Database.from_text("emp(joe).")
        scratch = Database.from_text("scratch(tmp).")
        for atom in list(scratch.atoms()):
            emptied.add(atom)
            emptied.remove(atom)
        assert "scratch" in list(emptied.predicates())  # the trap exists
        assert PlanCache.stats_signature(emptied) == PlanCache.stats_signature(
            fresh
        )
        cache = PlanCache()
        metrics = Metrics()
        with metrics.activate():
            first = cache.facts_for(program, fresh)
            second = cache.facts_for(program, emptied)
        assert second is first
        assert metrics.counters["plan_cache.hits"] == 1
        assert "plan_cache.invalidations" not in metrics.counters

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        database = Database.from_text("emp(joe).")
        programs = [
            _program("emp(X) -> +p%d(X)." % index) for index in range(3)
        ]
        for program in programs:
            cache.facts_for(program, database)
        assert len(cache) == 2
        metrics = Metrics()
        with metrics.activate():
            cache.facts_for(programs[0], database)  # evicted: re-derived
            cache.facts_for(programs[2], database)  # retained: hit
        assert metrics.counters["plan_cache.misses"] == 1
        assert metrics.counters["plan_cache.hits"] == 1


def _payroll_db():
    db = ActiveDatabase.from_text(
        "emp(joe). emp(ann). active(joe). active(ann). "
        "payroll(joe, 10). payroll(ann, 20)."
    )
    db.add_rule(
        "@name(cleanup) emp(X), not active(X), payroll(X, S) -> -payroll(X, S)."
    )
    return db


class TestActiveDatabaseIntegration:
    """The commit path keys the cache by the *run* program ``P_U`` — the
    registered rules plus the transaction's update rules — so two commits
    re-plan only when the rules, the update set, or the data magnitude
    actually changed."""

    def test_second_run_of_unchanged_program_is_a_pure_hit(self):
        db = _payroll_db()
        db.refresh()  # first run: derives and caches the analysis
        metrics = Metrics()
        with metrics.activate():
            db.refresh()  # nothing fires, nothing changed: pure hit
        # Zero re-planning on the second run: the analysis was derived
        # during the first commit and only validated here.
        assert metrics.counters["plan_cache.hits"] == 1
        assert "plan_cache.misses" not in metrics.counters
        assert "plan_cache.invalidations" not in metrics.counters

    def test_repeated_transaction_shape_is_a_hit(self):
        db = _payroll_db()
        with db.transaction() as tx:
            tx.insert("active", "joe")  # already present: delta is empty
        metrics = Metrics()
        with metrics.activate():
            with db.transaction() as tx:
                tx.insert("active", "joe")
        # Identical update set -> identical P_U rules -> same cache key;
        # the data did not move, so the stats signature matches too.
        assert metrics.counters["plan_cache.hits"] == 1
        assert "plan_cache.misses" not in metrics.counters

    def test_new_update_set_changes_the_run_program(self):
        db = _payroll_db()
        db.refresh()
        metrics = Metrics()
        with metrics.activate():
            with db.transaction() as tx:
                tx.delete("active", "ann")
        # The transaction's P_U rules extend the program, and the paper's
        # program facts (conflict-freedom, liveness) depend on them: a new
        # update set is a new program and must be analyzed afresh.
        assert metrics.counters["plan_cache.misses"] == 1
        assert "plan_cache.hits" not in metrics.counters

    def test_rule_change_between_commits_forces_replan(self):
        db = _payroll_db()
        db.refresh()
        db.add_rule("@name(audit) -payroll(X, S) -> +audit(X).")
        metrics = Metrics()
        with metrics.activate():
            db.refresh()
        # New rule set -> new cache key -> full analysis again.
        assert metrics.counters["plan_cache.misses"] == 1
        assert "plan_cache.hits" not in metrics.counters

    def test_data_magnitude_change_invalidates_plan(self):
        from repro.lang.atoms import atom

        db = _payroll_db()
        db.refresh()
        # Bulk-load emp across a bit-length bucket (2 rows -> 5 rows)
        # behind the facade's back, as after an external load.
        for name in ("eve", "mia", "tom"):
            db.database.add(atom("emp", name))
        metrics = Metrics()
        with metrics.activate():
            db.refresh()
        assert metrics.counters["plan_cache.invalidations"] == 1
        assert "plan_cache.misses" not in metrics.counters

    def test_insert_then_delete_all_keeps_the_plan_hot(self):
        # Regression for the emptied-predicate signature bug at the commit
        # level: a transaction that populates a scratch predicate and a
        # later one that empties it leave the relation registered with
        # zero rows.  The next identical commit must be a pure hit — not
        # an invalidation — because nothing the analysis consumes changed.
        db = _payroll_db()
        db.refresh()  # caches the analysis before 'scratch' ever exists
        with db.transaction() as tx:
            tx.insert("scratch", "a")
            tx.insert("scratch", "b")
        with db.transaction() as tx:
            tx.delete("scratch", "a")
            tx.delete("scratch", "b")
        metrics = Metrics()
        with metrics.activate():
            db.refresh()  # identical commit against the emptied predicate
        assert metrics.counters["plan_cache.hits"] == 1
        assert "plan_cache.misses" not in metrics.counters
        assert "plan_cache.invalidations" not in metrics.counters

    def test_caches_are_per_database_instance(self):
        db_a = _payroll_db()
        db_b = _payroll_db()
        db_a.refresh()
        metrics = Metrics()
        with metrics.activate():
            db_b.refresh()
        # db_b never committed before: its own cache starts cold.
        assert metrics.counters["plan_cache.misses"] == 1
