"""Tests for the commit event log."""

import pytest

from repro.active import ActiveDatabase
from repro.active.events import CommitRecord, EventLog
from repro.lang.atoms import atom


def committed_db():
    db = ActiveDatabase.from_text("emp(joe). active(joe). payroll(joe, 10).")
    db.add_rule(
        "@name(cleanup) emp(X), not active(X), payroll(X, S) -> -payroll(X, S)."
    )
    db.delete("active", "joe")
    db.insert("emp", "ann")
    return db


class TestLog:
    def test_one_record_per_commit(self):
        db = committed_db()
        assert len(db.log) == 2

    def test_records_carry_request_and_delta(self):
        db = committed_db()
        first = db.log[0]
        assert [str(u) for u in first.requested] == ["-active(joe)"]
        assert atom("payroll", "joe", 10) in first.delta.deletes

    def test_last(self):
        db = committed_db()
        assert db.log.last().transaction_id == 2
        assert EventLog().last() is None

    def test_for_atom(self):
        db = committed_db()
        touching = db.log.for_atom(atom("payroll", "joe", 10))
        assert [r.transaction_id for r in touching] == [1]
        assert db.log.for_atom(atom("nothing")) == []

    def test_stats_and_policy_recorded(self):
        record = committed_db().log[0]
        assert record.policy_name == "inertia"
        assert record.stats.rounds >= 1

    def test_rollback_not_logged(self):
        db = committed_db()
        tx = db.transaction()
        tx.insert("emp", "zoe")
        tx.rollback()
        assert len(db.log) == 2

    def test_append_type_checked(self):
        with pytest.raises(TypeError):
            EventLog().append("record")

    def test_iteration_and_clear(self):
        db = committed_db()
        assert [r.transaction_id for r in db.log] == [1, 2]
        db.log.clear()
        assert len(db.log) == 0

    def test_str(self):
        assert "tx1" in str(committed_db().log[0])
