"""Tests for the active-database facade."""

import pytest

from repro.active import ActiveDatabase
from repro.errors import LanguageError, TransactionError
from repro.lang import parse_atom
from repro.lang.atoms import atom
from repro.policies.priority import PriorityPolicy


def payroll_db():
    db = ActiveDatabase.from_text(
        "emp(joe). emp(ann). active(joe). active(ann). "
        "payroll(joe, 10). payroll(ann, 20)."
    )
    db.add_rule(
        "@name(cleanup) emp(X), not active(X), payroll(X, S) -> -payroll(X, S)."
    )
    return db


class TestDataAccess:
    def test_rows(self):
        db = payroll_db()
        assert db.rows("payroll") == [("ann", 20), ("joe", 10)]
        assert db.rows("missing") == []

    def test_contains(self):
        db = payroll_db()
        assert db.contains("emp", "joe")
        assert db.contains(atom("emp", "joe"))
        assert not db.contains("emp", "zoe")

    def test_select_with_wildcards(self):
        db = payroll_db()
        assert db.select("payroll", "joe", None) == [("joe", 10)]
        assert db.select("payroll", None, 20) == [("ann", 20)]
        assert db.select("payroll") == db.rows("payroll")

    def test_len(self):
        assert len(payroll_db()) == 6

    def test_define_table(self):
        db = ActiveDatabase()
        db.define_table("payroll", ("name", "salary"))
        schema = db.database.catalog.get("payroll")
        assert schema.columns == ("name", "salary")


class TestRules:
    def test_add_rule_text_and_objects(self):
        db = ActiveDatabase()
        rule = db.add_rule("p -> +q.")
        assert len(db.program) == 1
        db.add_rule(rule.substitute({}))  # Rule object accepted (anonymous)
        assert len(db.program) == 2

    def test_add_rule_rejects_multi(self):
        with pytest.raises(LanguageError, match="exactly one"):
            ActiveDatabase().add_rule("p -> +q. q -> +r.")

    def test_add_rules_text(self):
        db = ActiveDatabase()
        db.add_rules("p -> +q. q -> +r.")
        assert len(db.program) == 2

    def test_duplicate_names_rejected_at_registration(self):
        db = ActiveDatabase()
        db.add_rule("@name(r1) p -> +q.")
        with pytest.raises(LanguageError):
            db.add_rule("@name(r1) p -> +z.")

    def test_drop_rule(self):
        db = ActiveDatabase()
        db.add_rule("@name(r1) p -> +q.")
        db.drop_rule("r1")
        assert len(db.program) == 0
        with pytest.raises(KeyError):
            db.drop_rule("r1")


class TestCommits:
    def test_trigger_fires_on_commit(self):
        db = payroll_db()
        db.delete("active", "joe")
        assert db.rows("payroll") == [("ann", 20)]

    def test_nothing_visible_before_commit(self):
        db = payroll_db()
        tx = db.transaction()
        tx.delete("active", "joe")
        assert db.contains("active", "joe")
        assert db.rows("payroll") == [("ann", 20), ("joe", 10)]
        tx.commit()
        assert not db.contains("active", "joe")

    def test_rollback_leaves_database_untouched(self):
        db = payroll_db()
        tx = db.transaction()
        tx.delete("active", "joe")
        tx.rollback()
        assert db.contains("active", "joe")

    def test_context_manager_commits_on_success(self):
        db = payroll_db()
        with db.transaction() as tx:
            tx.delete("active", "ann")
        assert db.rows("payroll") == [("joe", 10)]

    def test_context_manager_rolls_back_on_error(self):
        db = payroll_db()
        with pytest.raises(RuntimeError):
            with db.transaction() as tx:
                tx.delete("active", "ann")
                raise RuntimeError("boom")
        assert db.contains("active", "ann")

    def test_one_open_transaction(self):
        db = payroll_db()
        db.transaction()
        with pytest.raises(TransactionError, match="still active"):
            db.transaction()

    def test_refresh_runs_condition_action_sweep(self):
        db = payroll_db()
        # Sneak a violation in behind the rules' back, then refresh.
        db.database.remove(atom("active", "joe"))
        db.refresh()
        assert db.rows("payroll") == [("ann", 20)]

    def test_auto_commit_helpers_return_result(self):
        db = payroll_db()
        result = db.insert("emp", "zoe")
        assert result is not None
        assert db.contains("emp", "zoe")

    def test_policy_respected(self):
        db = ActiveDatabase.from_text(
            "p.", "@name(lo) @priority(1) p -> +a. @name(hi) @priority(2) p -> -a.",
            policy=PriorityPolicy(),
        )
        db.refresh()
        assert not db.contains("a")
