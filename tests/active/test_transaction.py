"""Tests for transactions: staging, savepoints, state machine."""

import pytest

from repro.active import ActiveDatabase, TxState
from repro.errors import TransactionError
from repro.lang.atoms import atom


def fresh():
    return ActiveDatabase.from_text("p.")


class TestStaging:
    def test_insert_delete_staging(self):
        tx = fresh().transaction()
        tx.insert("q", "a").delete("p")
        updates = tx.updates()
        assert [str(u) for u in updates] == ["+q(a)", "-p"]

    def test_atom_objects_accepted(self):
        tx = fresh().transaction()
        tx.insert(atom("q", "a"))
        assert [str(u) for u in tx.updates()] == ["+q(a)"]

    def test_atom_plus_values_rejected(self):
        tx = fresh().transaction()
        with pytest.raises(TransactionError):
            tx.insert(atom("q", "a"), "b")

    def test_nonground_rejected(self):
        tx = fresh().transaction()
        with pytest.raises(TransactionError, match="ground"):
            tx.insert(atom("q", "X"))

    def test_duplicates_deduplicated(self):
        tx = fresh().transaction()
        tx.insert("q", "a").insert("q", "a")
        assert len(tx.updates()) == 1

    def test_conflicting_stages_allowed(self):
        # +a and -a may both be staged; the policy resolves at commit.
        db = fresh()
        with db.transaction() as tx:
            tx.insert("a").delete("a")
        assert tx.state is TxState.COMMITTED
        assert not db.contains("a")  # inertia: a was absent


class TestSavepoints:
    def test_rollback_to_discards_tail(self):
        tx = fresh().transaction()
        tx.insert("q", "a")
        tx.savepoint("s1")
        tx.insert("q", "b")
        tx.rollback_to("s1")
        assert [str(u) for u in tx.updates()] == ["+q(a)"]

    def test_nested_savepoints(self):
        tx = fresh().transaction()
        tx.savepoint("outer")
        tx.insert("q", "a")
        tx.savepoint("inner")
        tx.insert("q", "b")
        tx.rollback_to("outer")
        assert tx.updates() == ()
        with pytest.raises(TransactionError):
            tx.rollback_to("inner")

    def test_auto_names(self):
        tx = fresh().transaction()
        assert tx.savepoint() == "sp_1"
        assert tx.savepoint() == "sp_2"

    def test_duplicate_names_rejected(self):
        tx = fresh().transaction()
        tx.savepoint("s")
        with pytest.raises(TransactionError):
            tx.savepoint("s")

    def test_unknown_savepoint(self):
        tx = fresh().transaction()
        with pytest.raises(TransactionError):
            tx.rollback_to("nope")


class TestStateMachine:
    def test_commit_then_use_rejected(self):
        db = fresh()
        tx = db.transaction()
        tx.insert("q", "a")
        tx.commit()
        assert tx.state is TxState.COMMITTED
        with pytest.raises(TransactionError, match="committed"):
            tx.insert("q", "b")
        with pytest.raises(TransactionError):
            tx.commit()

    def test_rollback_then_use_rejected(self):
        tx = fresh().transaction()
        tx.rollback()
        assert tx.state is TxState.ABORTED
        with pytest.raises(TransactionError, match="aborted"):
            tx.insert("q", "a")

    def test_new_transaction_after_completion(self):
        db = fresh()
        db.transaction().commit()
        tx2 = db.transaction()
        assert tx2.transaction_id == 2

    def test_result_stored_on_commit(self):
        db = fresh()
        tx = db.transaction()
        tx.insert("q", "a")
        result = tx.commit()
        assert tx.result is result
        assert db.contains("q", "a")
