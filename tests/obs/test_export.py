"""Tests for the Prometheus and chrome://tracing exporters."""

import json

from repro.core.engine import park
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    prometheus_text,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.metrics import Metrics
from repro.obs.tracing import Tracer

RULES = "@name(r1) p -> +q. @name(r2) q -> +r."


class TestPrometheusText:
    def test_empty_registry(self):
        assert prometheus_text(Metrics()) == ""

    def test_counter_and_gauge_lines(self):
        metrics = Metrics()
        metrics.inc("engine.rounds", 3)
        metrics.gauge("engine.result_atoms", 7)
        text = prometheus_text(metrics)
        assert "# TYPE repro_engine_rounds counter" in text
        assert "repro_engine_rounds 3" in text
        assert "# TYPE repro_engine_result_atoms gauge" in text
        assert "repro_engine_result_atoms 7" in text
        assert text.endswith("\n")

    def test_timers_become_summaries(self):
        metrics = Metrics()
        metrics.observe("phase.incorp", 0.25)
        metrics.observe("phase.incorp", 0.25)
        text = prometheus_text(metrics)
        assert "# TYPE repro_phase_incorp_seconds summary" in text
        assert "repro_phase_incorp_seconds_count 2" in text
        assert "repro_phase_incorp_seconds_sum 0.5" in text

    def test_rule_series_labelled(self):
        metrics = Metrics()
        metrics.observe_rule("r1", 0.5, 4)
        text = prometheus_text(metrics)
        assert 'repro_rule_seconds_count{rule="r1"} 1' in text
        assert 'repro_rule_seconds_sum{rule="r1"} 0.5' in text
        assert 'repro_rule_firings{rule="r1"} 4' in text

    def test_label_escaping(self):
        metrics = Metrics()
        metrics.observe_rule('odd"rule', 0.1, 1)
        text = prometheus_text(metrics)
        assert 'rule="odd\\"rule"' in text

    def test_real_run_snapshot(self):
        metrics = Metrics()
        park(RULES, "p.", metrics=metrics)
        text = prometheus_text(metrics)
        assert "repro_engine_rounds" in text
        # one "# TYPE" per exported metric family
        families = [l for l in text.splitlines() if l.startswith("# TYPE")]
        assert len(families) == len(set(families))

    def test_write_prometheus(self, tmp_path):
        metrics = Metrics()
        metrics.inc("audit.events", 12)
        path = tmp_path / "snapshot.prom"
        write_prometheus(metrics, str(path))
        assert "repro_audit_events 12" in path.read_text()


class TestChromeTrace:
    def _tracer(self):
        tracer = Tracer()
        with tracer.span("engine.run", policy="inertia"):
            with tracer.span("engine.round", number=1):
                tracer.event("on_conflicts", count=2)
        return tracer

    def test_spans_become_complete_events(self):
        trace = chrome_trace(self._tracer())
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"engine.run", "engine.round"}
        for event in complete:
            assert event["dur"] >= 0
            assert event["ts"] >= 0

    def test_instants_and_hierarchy(self):
        trace = chrome_trace(self._tracer())
        (instant,) = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "on_conflicts"
        assert instant["s"] == "t"
        assert instant["args"]["count"] == 2
        assert "parent_id" in instant["args"]

    def test_microsecond_timestamps(self):
        tracer = Tracer(clock=iter([0.0, 0.0, 0.002]).__next__)
        record = tracer.begin("span")
        tracer.end(record)
        (event,) = chrome_trace(tracer)["traceEvents"]
        assert event["dur"] == 2000.0  # 2 ms in microseconds

    def test_open_span_becomes_begin_event(self):
        tracer = Tracer()
        tracer.begin("engine.run")  # never ended: mid-run flush
        (event,) = chrome_trace(tracer)["traceEvents"]
        assert event["ph"] == "B"
        assert "dur" not in event

    def test_json_round_trip(self):
        payload = json.loads(chrome_trace_json(self._tracer()))
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == 3

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._tracer(), str(path))
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]

    def test_engine_run_exports(self, tmp_path):
        tracer = Tracer()
        park(RULES, "p.", tracer=tracer)
        payload = chrome_trace(tracer)
        names = {e["name"] for e in payload["traceEvents"]}
        assert "engine.run" in names
