"""Tests for the decision trail and its persistent audit log."""

import os

import pytest

from repro.active.activedb import ActiveDatabase
from repro.core.engine import park
from repro.errors import StorageError
from repro.lang.atoms import atom
from repro.lang.updates import insert
from repro.obs import audit
from repro.obs.audit import (
    SIDECAR_SUFFIX,
    AuditLog,
    DecisionTrail,
    _parse_audit_record,
    _render_audit_record,
)
from repro.obs.metrics import Metrics

E3 = """
@name(r1) p -> +q.
@name(r2) p -> -q.
@name(r3) q -> +a.
@name(r4) q -> -a.
@name(r5) p -> +a.
"""

MULTI = """
@name(r1) u -> +a.
@name(r2) u -> -a.
@name(r3) u -> +b.
@name(r4) u -> -b.
"""

LOST = """
@name(r1) p -> +q.
@name(r2) q -> +b.
@name(r3) b -> -q.
"""

STALE = """
@name(r0) seed -> +c.
@name(r1) not b -> -a.
@name(r2) c -> +b.
@name(r3) b -> +a.
"""


def kinds(trail):
    return [event["kind"] for event in trail.to_events()]


class TestDecisionTrail:
    def test_disabled_by_default(self):
        result = park(E3, "p.")
        assert result.trail is None
        assert audit.ACTIVE is None

    def test_active_restored_after_run(self):
        park(E3, "p.", audit=True)
        assert audit.ACTIVE is None

    def test_event_stream_shape(self):
        result = park(E3, "p.", audit=True)
        trail = result.trail
        assert trail is not None
        stream = kinds(trail)
        assert stream[0] == "start"
        assert stream[-1] == "finish"
        assert "conflict" in stream
        assert "verdict" in stream
        assert "blocked" in stream
        assert "restart" in stream
        assert stream.count("epoch_end") == len(trail.epochs) == 2

    def test_conflict_records_both_sides(self):
        result = park(E3, "p.", audit=True)
        (conflict,) = [
            e for e in result.trail.to_events() if e["kind"] == "conflict"
        ]
        assert conflict["atom"] == "q"
        assert conflict["ins"] == ["(r1)"]
        assert conflict["dels"] == ["(r2)"]
        assert "stale_side" not in conflict

    def test_verdict_names_policy_winner_and_losers(self):
        result = park(E3, "p.", audit=True)
        (verdict,) = [
            e for e in result.trail.to_events() if e["kind"] == "verdict"
        ]
        assert verdict["policy"] == "inertia"
        assert verdict["decision"] == "delete"
        assert verdict["winners"] == ["(r2)"]
        assert verdict["losers"] == ["(r1)"]

    def test_blocked_groundings_named(self):
        result = park(E3, "p.", audit=True)
        (blocked,) = [
            e for e in result.trail.to_events() if e["kind"] == "blocked"
        ]
        assert blocked["grounding"] == "(r1)"
        assert blocked["rule"] == "r1"
        assert blocked["head"] == "+q"

    def test_epoch_provenance_archived_not_discarded(self):
        result = park(LOST, "p.", audit=True)
        assert result.stats.restarts == 1
        first, final = result.trail.epochs
        # The dying epoch's derivations survive the restart that cleared
        # the engine's own provenance.
        archived = {str(u) for u in first.derivations}
        assert "+b" in archived and "+q" in archived
        assert final.derivations == {}

    def test_lost_derivers_lookup(self):
        result = park(LOST, "p.", audit=True)
        epoch, derivers = result.trail.lost_derivers(insert(atom("b")))
        assert epoch == 1
        assert {g.rule.name for g in derivers} == {"r2"}
        assert result.trail.lost_derivers(insert(atom("zzz"))) is None

    def test_verdict_for(self):
        result = park(E3, "p.", audit=True)
        conflict, decision, policy, epoch = result.trail.verdict_for(atom("q"))
        assert decision.value == "delete"
        assert policy == "inertia"
        assert epoch == 1
        assert result.trail.verdict_for(atom("nope")) is None

    def test_stale_side_flagged(self):
        result = park(STALE, "seed.", audit=True)
        conflicts = [
            e for e in result.trail.to_events() if e["kind"] == "conflict"
        ]
        assert any(e.get("stale_side") == "dels" for e in conflicts)

    def test_round_events_from_every_strategy(self):
        for evaluation in ("naive", "seminaive", "incremental"):
            result = park(E3, "p.", audit=True, evaluation=evaluation)
            rounds = [
                e for e in result.trail.to_events() if e["kind"] == "round"
            ]
            assert rounds, evaluation
            assert {e["strategy"] for e in rounds} == {evaluation}
            assert len(rounds) == result.stats.rounds

    def test_same_decisions_across_strategies(self):
        streams = []
        for evaluation in ("naive", "seminaive", "incremental"):
            result = park(E3, "p.", audit=True, evaluation=evaluation)
            streams.append(
                [
                    e
                    for e in result.trail.to_events()
                    if e["kind"] in ("conflict", "verdict", "blocked", "restart")
                ]
            )
        assert streams[0] == streams[1] == streams[2]

    def test_events_for_filters_by_atom(self):
        result = park(E3, "p.", audit=True)
        mentioning = result.trail.events_for("q")
        assert mentioning
        assert all(
            event["kind"]
            in ("conflict", "verdict", "blocked", "epoch_end", "round")
            for event in mentioning
        )

    def test_reusable_after_reset(self):
        trail = DecisionTrail()
        first = park(E3, "p.", audit=trail)
        count = len(trail.events)
        second = park(E3, "p.", audit=trail)
        assert second.trail is trail
        assert len(trail.events) == count  # start() reset the first run

    def test_audit_counters_recorded(self):
        metrics = Metrics()
        park(E3, "p.", audit=True, metrics=metrics)
        assert metrics.counter("audit.events") > 0
        assert metrics.counter("audit.conflicts") == 1
        assert metrics.counter("audit.verdicts") == 1
        assert metrics.counter("audit.restarts") == 1
        assert metrics.counter("audit.epochs_archived") == 2

    def test_fingerprint_unchanged_by_audit(self):
        plain = Metrics()
        park(E3, "p.", metrics=plain)
        audited = Metrics()
        park(E3, "p.", metrics=audited, audit=True)
        assert plain.fingerprint() == audited.fingerprint()


class TestAuditRecordFraming:
    def test_round_trip(self):
        events = [{"kind": "start", "epoch": 1, "round": 0, "policy": "inertia"}]
        record = _parse_audit_record(_render_audit_record(17, events))
        assert record.transaction_id == 17
        assert list(record.events) == events

    def test_crc_detects_flips(self):
        line = _render_audit_record(1, [{"kind": "finish"}])
        flipped = line.replace("finish", "finisH")
        with pytest.raises(StorageError):
            _parse_audit_record(flipped)

    def test_length_detects_truncation(self):
        line = _render_audit_record(1, [{"kind": "finish", "rounds": 3}])
        with pytest.raises(StorageError):
            _parse_audit_record(line[:-4])

    def test_rejects_foreign_frames(self):
        with pytest.raises(StorageError):
            _parse_audit_record("v2|tx=1|len=0|crc=00000000|")


class TestAuditLog:
    def test_append_and_read(self, tmp_path):
        log = AuditLog(str(tmp_path / "trail.audit"))
        log.append(1, [{"kind": "start"}])
        log.append(2, [{"kind": "start"}, {"kind": "finish"}])
        records = log.records()
        assert [r.transaction_id for r in records] == [1, 2]
        assert len(records[1].events) == 2

    def test_record_for(self, tmp_path):
        log = AuditLog(str(tmp_path / "trail.audit"))
        log.append(1, [{"kind": "start"}])
        assert log.record_for(1).transaction_id == 1
        assert log.record_for(99) is None

    def test_accepts_trail_objects(self, tmp_path):
        result = park(E3, "p.", audit=True)
        log = AuditLog(str(tmp_path / "trail.audit"))
        record = log.append(5, result.trail)
        assert record.verdicts()
        assert log.record_for(5).verdicts() == record.verdicts()

    def test_torn_tail_tolerated_and_repaired(self, tmp_path):
        path = str(tmp_path / "trail.audit")
        log = AuditLog(path)
        log.append(1, [{"kind": "start"}])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("a1|tx=2|len=999|crc=00000000|[{\"kind\"")
        fresh = AuditLog(path)
        records = fresh.records()
        assert [r.transaction_id for r in records] == [1]
        assert fresh.corrupt_tail is not None
        assert fresh.repair_tail() is True
        assert AuditLog(path).records()[0].transaction_id == 1

    def test_append_after_torn_tail_truncates_first(self, tmp_path):
        path = str(tmp_path / "trail.audit")
        log = AuditLog(path)
        log.append(1, [{"kind": "start"}])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage")
        fresh = AuditLog(path)
        fresh.append(2, [{"kind": "start"}])
        assert [r.transaction_id for r in fresh.records()] == [1, 2]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "trail.audit")
        log = AuditLog(path)
        log.append(1, [{"kind": "start"}])
        log.append(2, [{"kind": "start"}])
        with open(path, "r+", encoding="utf-8") as handle:
            text = handle.read()
            handle.seek(0)
            # Corrupt the FIRST record; an intact record follows it, so
            # this is damage, not a crash artifact, and must raise.
            handle.write(text.replace("start", "staRt", 1))
        with pytest.raises(StorageError):
            AuditLog(path).records()


class TestActiveDatabaseAudit:
    def _fresh(self, tmp_path, **options):
        journal_path = str(tmp_path / "commits.journal")
        db = ActiveDatabase.from_text("u.", journal=journal_path, **options)
        db.add_rules(MULTI)
        return db, journal_path

    def test_sidecar_created_next_to_journal(self, tmp_path):
        db, journal_path = self._fresh(tmp_path, audit=True)
        with db.transaction() as tx:
            tx.insert("marker")
        assert db.audit_log.path == journal_path + SIDECAR_SUFFIX
        assert os.path.exists(db.audit_log.path)

    def test_no_sidecar_when_disabled(self, tmp_path):
        db, journal_path = self._fresh(tmp_path)
        with db.transaction() as tx:
            tx.insert("marker")
        assert db.audit_log is None
        assert not os.path.exists(journal_path + SIDECAR_SUFFIX)

    def test_trail_rides_on_commit_result(self, tmp_path):
        db, _ = self._fresh(tmp_path, audit=True)
        with db.transaction() as tx:
            tx.insert("marker")
        assert tx.result.trail is not None
        assert len(tx.result.trail.epochs) == 2

    def test_multi_conflict_transaction_reconstructed_after_restart(
        self, tmp_path
    ):
        db, journal_path = self._fresh(tmp_path, audit=True)
        with db.transaction() as tx:
            tx.insert("marker")
        del db  # "process exit"

        # A brand-new reader sees every SELECT verdict and restart of the
        # multi-conflict transaction, from the file alone.
        log = AuditLog(journal_path + SIDECAR_SUFFIX)
        record = log.record_for(tx.transaction_id)
        verdicts = record.verdicts()
        assert {(v["atom"], v["decision"]) for v in verdicts} == {
            ("a", "delete"),
            ("b", "delete"),
        }
        assert {tuple(v["winners"]) for v in verdicts} == {("(r2)",), ("(r4)",)}
        (restart,) = record.restarts()
        assert restart["blocked_total"] == 2
        assert len(record.conflicts()) == 2

    def test_one_record_per_commit(self, tmp_path):
        db, _ = self._fresh(tmp_path, audit=True)
        for value in ("m1", "m2", "m3"):
            with db.transaction() as tx:
                tx.insert(value)
        assert [r.transaction_id for r in db.audit_log.records()] == [1, 2, 3]

    def test_recover_keeps_auditing_to_same_sidecar(self, tmp_path):
        db, journal_path = self._fresh(tmp_path, audit=True)
        with db.transaction() as tx:
            tx.insert("m1")
        snapshot = str(tmp_path / "snap.park")
        from repro.storage.textio import dump_database

        dump_database(db.database, snapshot)

        recovered = ActiveDatabase.recover(
            snapshot, journal_path, rules=db.program, audit=True
        )
        with recovered.transaction() as tx2:
            tx2.insert("m2")
        log = AuditLog(journal_path + SIDECAR_SUFFIX)
        assert [r.transaction_id for r in log.records()] == [1, 2]

    def test_checkpoint_keeps_audit_history(self, tmp_path):
        db, journal_path = self._fresh(tmp_path, audit=True)
        with db.transaction() as tx:
            tx.insert("m1")
        db.checkpoint(str(tmp_path / "snap.park"))
        # journal truncated, audit history intact
        assert db.journal.records() == []
        assert [r.transaction_id for r in db.audit_log.records()] == [1]

    def test_audit_true_without_journal_keeps_trail_in_memory(self):
        db = ActiveDatabase.from_text("u.", audit=True)
        db.add_rules(MULTI)
        with db.transaction() as tx:
            tx.insert("marker")
        assert db.audit_log is None
        assert tx.result.trail is not None

    def test_explicit_sidecar_path(self, tmp_path):
        explicit = str(tmp_path / "elsewhere.audit")
        db = ActiveDatabase.from_text("u.", audit=explicit)
        db.add_rules(MULTI)
        with db.transaction() as tx:
            tx.insert("marker")
        assert AuditLog(explicit).record_for(1) is not None
