"""Tests for the hot-spot report builder and its text rendering."""

import json

from repro.core.engine import park
from repro.obs import Metrics, hotspot_report, render_profile

P1 = "@name(r1) p -> +q. @name(r2) p -> -a. @name(r3) q -> +a."

TC = (
    "edge(X, Y) -> +path(X, Y). path(X, Y), edge(Y, Z) -> +path(X, Z).",
    "edge(a, b). edge(b, c). edge(c, d).",
)


def metered_run(program=P1, facts="p. a.", **options):
    metrics = Metrics()
    result = park(program, facts, metrics=metrics, **options)
    return metrics, result


class TestHotspotReport:
    def test_run_section(self):
        metrics, result = metered_run()
        report = hotspot_report(metrics, result=result, wall_time=0.5)
        assert report["run"]["epochs"] == 2
        assert report["run"]["conflicts_resolved"] == 1
        assert report["run"]["blocked_instances"] == 1
        assert report["run"]["result_atoms"] == len(result.database)
        assert report["run"]["policy"] == "inertia"
        assert report["wall_time_s"] == 0.5

    def test_without_result(self):
        metrics, _ = metered_run()
        report = hotspot_report(metrics)
        assert "result_atoms" not in report["run"]
        assert report["wall_time_s"] is None

    def test_phase_shares_sum_against_wall_time(self):
        metrics, result = metered_run(*TC)
        wall = sum(entry[1] for entry in metrics.timers.values()) * 2
        report = hotspot_report(metrics, result=result, wall_time=wall)
        shares = [entry["share"] for entry in report["phases"].values()]
        assert all(share is not None for share in shares)
        assert sum(shares) <= 0.55  # phases are half the doubled wall time

    def test_rules_sorted_by_time_and_truncated(self):
        metrics, result = metered_run()
        report = hotspot_report(metrics, result=result, top=2)
        assert len(report["rules"]) == 2
        assert report["rules_truncated"] == 1  # r1/r2/r3, one dropped
        seconds = [entry["seconds"] for entry in report["rules"]]
        assert seconds == sorted(seconds, reverse=True)

    def test_index_section_ratio(self):
        metrics, result = metered_run(*TC)
        report = hotspot_report(metrics, result=result)
        index = report["index"]
        assert index["lookups"] > 0
        assert 0.0 <= index["hit_ratio"] <= 1.0

    def test_meta_carried_through(self):
        metrics, result = metered_run()
        report = hotspot_report(metrics, meta={"rules": "x.park"})
        assert report["meta"]["rules"] == "x.park"

    def test_json_serializable(self):
        metrics, result = metered_run(*TC)
        json.dumps(hotspot_report(metrics, result=result, wall_time=0.1))


class TestRenderProfile:
    def test_table_sections_present(self):
        metrics, result = metered_run()
        text = render_profile(
            hotspot_report(metrics, result=result, wall_time=0.01)
        )
        assert "per-phase breakdown" in text
        assert "per-rule hot spots" in text
        assert "index efficiency:" in text
        assert "matching:" in text
        assert "r3" in text

    def test_error_banner_on_partial_telemetry(self):
        metrics, result = metered_run()
        report = hotspot_report(
            metrics, meta={"rules": "x.park", "error": "exceeded max_rounds=2"}
        )
        text = render_profile(report)
        assert "! run failed: exceeded max_rounds=2" in text
        assert "partial telemetry" in text

    def test_truncation_note(self):
        metrics, result = metered_run()
        text = render_profile(hotspot_report(metrics, result=result, top=1))
        assert "more rules" in text
