"""Tests for span tracing and the tracing engine listener."""

import json

import pytest

from repro.core.engine import ParkEngine, park
from repro.errors import NonTerminationError
from repro.obs import Tracer, TracingListener


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestTracer:
    def test_nested_spans(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner", depth=1):
                t.event("tick")
        outer, inner = t.spans()
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert inner["attrs"] == {"depth": 1}
        (tick,) = t.events()
        assert tick["parent"] == inner["id"]
        assert "dur" in outer and "dur" in inner and "dur" not in tick

    def test_end_cascades_over_orphans(self):
        t = Tracer()
        outer = t.begin("outer")
        t.begin("orphan")
        t.end(outer)  # closes orphan too, stamping its duration
        assert t.open_spans() == []
        assert all("dur" in span for span in t.spans())

    def test_end_unopened_span_raises(self):
        t = Tracer()
        record = t.begin("a")
        t.end(record)
        with pytest.raises(ValueError):
            t.end(record)

    def test_jsonl_roundtrip(self):
        t = Tracer(clock=FakeClock())
        with t.span("run", rules=2):
            t.event("fired", rule="r1")
        lines = t.to_jsonl().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["name"] == "run"
        assert parsed[1]["attrs"]["rule"] == "r1"

    def test_open_spans_marked_in_jsonl(self):
        t = Tracer()
        t.begin("never-closed")
        (line,) = t.to_jsonl().splitlines()
        parsed = json.loads(line)
        assert parsed["open"] is True
        assert "dur" not in parsed
        # ...and the record itself was not mutated by export.
        assert "open" not in t.records[0]

    def test_write_jsonl(self, tmp_path):
        t = Tracer()
        with t.span("a"):
            pass
        path = tmp_path / "trace.jsonl"
        t.write_jsonl(str(path))
        assert json.loads(path.read_text())["name"] == "a"

    def test_empty_trace_serializes_to_empty_string(self):
        assert Tracer().to_jsonl() == ""


class TestEngineSpans:
    def test_run_emits_phase_spans(self):
        t = Tracer()
        park("p -> +q. q -> +r.", "p.", tracer=t)
        names = [s["name"] for s in t.spans()]
        assert names[0] == "engine.run"
        assert names.count("engine.round") == 3
        assert "match.gamma" in names
        assert "engine.apply" in names
        assert "engine.incorp" in names
        assert t.open_spans() == []

    def test_conflict_run_emits_policy_span(self):
        t = Tracer()
        park(
            "@name(r1) p -> +q. @name(r2) p -> -a. @name(r3) q -> +a.",
            "p. a.",
            tracer=t,
        )
        (policy_span,) = t.spans("policy.resolve")
        assert policy_span["attrs"]["epoch"] == 1

    def test_error_leaves_no_open_spans(self):
        t = Tracer()
        engine = ParkEngine(tracer=t, max_rounds=1)
        with pytest.raises(NonTerminationError):
            engine.run("p -> +q. q -> +r.", "p.")
        # run()'s finally cascade-closed everything that had begun.
        assert t.open_spans() == []
        assert t.spans("engine.run")

    def test_span_tree_is_well_formed(self):
        t = Tracer()
        park("p(X) -> +q(X).", "p(1). p(2).", tracer=t)
        ids = {span["id"] for span in t.spans()}
        for span in t.spans():
            assert span["parent"] is None or span["parent"] in ids


class TestTracingListener:
    def test_listener_event_stream(self):
        t = Tracer()
        listener = TracingListener(t)
        ParkEngine(listeners=[listener]).run(
            "@name(r1) p -> +q. @name(r2) p -> -a. @name(r3) q -> +a.", "p. a."
        )
        names = [e["name"] for e in t.events()]
        assert names[0] == "engine.start"
        assert "engine.conflicts" in names
        assert "engine.restart" in names
        assert names[-2:] == ["engine.fixpoint", "engine.finish"]
        (finish,) = t.events("engine.finish")
        assert finish["attrs"]["restarts"] == 1
        assert finish["attrs"]["blocked"] == 1

    def test_listener_events_nest_under_engine_spans(self):
        t = Tracer()
        listener = TracingListener(t)
        ParkEngine(listeners=[listener], tracer=t).run("p -> +q.", "p.")
        (start,) = t.events("engine.start")
        (run_span,) = t.spans("engine.run")
        assert start["parent"] == run_span["id"]
