"""Tests for the metrics registry and its process-wide installation."""

import pytest

from repro.core.engine import ParkEngine, park
from repro.obs import Metrics, NullMetrics, get_active, set_active
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import SEMANTIC_COUNTERS


@pytest.fixture(autouse=True)
def _no_leaked_registry():
    assert get_active() is None, "a registry leaked in from another test"
    yield
    set_active(None)


class TestRegistry:
    def test_counters(self):
        m = Metrics()
        m.inc("a")
        m.inc("a", 4)
        assert m.counter("a") == 5
        assert m.counter("never") == 0

    def test_gauges_last_write_wins(self):
        m = Metrics()
        m.gauge("size", 10)
        m.gauge("size", 3)
        assert m.gauges["size"] == 3

    def test_timer_aggregation(self):
        m = Metrics()
        m.observe("t", 0.2)
        m.observe("t", 0.1)
        m.observe("t", 0.4)
        count, total, low, high = m.timers["t"]
        assert count == 3
        assert total == pytest.approx(0.7)
        assert low == pytest.approx(0.1)
        assert high == pytest.approx(0.4)
        assert m.timer_total("t") == pytest.approx(0.7)
        assert m.timer_total("never") == 0.0

    def test_time_context_manager(self):
        m = Metrics()
        with m.time("block"):
            pass
        assert m.timers["block"][0] == 1

    def test_rule_stats(self):
        m = Metrics()
        m.observe_rule("r1", 0.1, 3)
        m.observe_rule("r1", 0.2, 0)
        assert m.rules["r1"][0] == 2
        assert m.rules["r1"][1] == pytest.approx(0.3)
        assert m.rules["r1"][2] == 3

    def test_ratio(self):
        m = Metrics()
        assert m.ratio("hits", "lookups") is None
        m.inc("lookups", 4)
        m.inc("hits", 3)
        assert m.ratio("hits", "lookups") == pytest.approx(0.75)

    def test_fingerprint_covers_semantic_counters_only(self):
        m = Metrics()
        m.inc("engine.rounds", 7)
        m.inc("storage.index_lookups", 999)
        fingerprint = dict(m.fingerprint())
        assert fingerprint["engine.rounds"] == 7
        assert "storage.index_lookups" not in fingerprint
        assert tuple(name for name, _ in m.fingerprint()) == SEMANTIC_COUNTERS

    def test_as_dict_and_reset(self):
        import json

        m = Metrics()
        m.inc("a")
        m.gauge("g", 1)
        m.observe("t", 0.5)
        m.observe_rule("r", 0.5, 2)
        payload = m.as_dict()
        json.dumps(payload)  # must be serializable
        assert payload["counters"] == {"a": 1}
        assert payload["timers"]["t"]["count"] == 1
        m.reset()
        assert not m.counters and not m.gauges and not m.timers and not m.rules


class TestInstallation:
    def test_set_active_returns_previous(self):
        first = Metrics()
        second = Metrics()
        assert set_active(first) is None
        assert set_active(second) is first
        assert set_active(None) is second

    def test_activate_restores_on_error(self):
        m = Metrics()
        with pytest.raises(RuntimeError):
            with m.activate():
                assert obs_metrics.ACTIVE is m
                raise RuntimeError("boom")
        assert obs_metrics.ACTIVE is None

    def test_engine_installs_and_restores(self):
        m = Metrics()
        park("p -> +q.", "p.", metrics=m)
        assert obs_metrics.ACTIVE is None
        assert m.counter("engine.runs") == 1
        assert m.counter("engine.rounds") > 0

    def test_engine_restores_registry_on_engine_error(self):
        from repro.errors import NonTerminationError

        m = Metrics()
        engine = ParkEngine(metrics=m, max_rounds=1)
        with pytest.raises(NonTerminationError):
            engine.run("p -> +q. q -> +r.", "p.")
        assert obs_metrics.ACTIVE is None
        # Partial telemetry survives: the first round was recorded before
        # the budget check aborted the second.
        assert m.counter("engine.rounds") == 1
        assert m.counter("engine.firings") > 0

    def test_ambient_activation_records_run(self):
        m = Metrics()
        with m.activate():
            park("p -> +q.", "p.")
        assert m.counter("engine.runs") == 1
        assert m.counter("match.rule_matches") > 0

    def test_result_carries_registry(self):
        m = Metrics()
        result = park("p -> +q.", "p.", metrics=m)
        assert result.metrics is m

    def test_null_metrics_records_nothing(self):
        m = NullMetrics()
        park("p -> +q.", "p.", metrics=m)
        assert not m.counters
        assert not m.timers
        assert not m.rules


class TestEngineCounters:
    def test_conflict_counters(self):
        m = Metrics()
        park(
            "@name(r1) p -> +q. @name(r2) p -> -a. @name(r3) q -> +a.",
            "p. a.",
            metrics=m,
        )
        assert m.counter("engine.restarts") == 1
        assert m.counter("engine.epochs") == 2
        assert m.counter("engine.conflicts_resolved") == 1
        assert m.counter("engine.blocked_instances") == 1

    def test_storage_and_matching_counters_on_a_join(self):
        m = Metrics()
        park(
            "edge(X, Y) -> +path(X, Y). path(X, Y), edge(Y, Z) -> +path(X, Z).",
            "edge(a, b). edge(b, c). edge(c, d).",
            metrics=m,
        )
        assert m.counter("storage.index_lookups") > 0
        assert m.counter("storage.index_hits") > 0
        assert m.counter("match.rule_matches") > 0
        assert m.counter("eval.full_matches") > 0
        assert m.counter("planner.plans") >= 2
        assert m.rules  # per-rule attribution recorded

    def test_incremental_strategy_counters(self):
        m = Metrics()
        park(
            "p(X) -> +q(X). q(X) -> +r(X).",
            "p(1). p(2).",
            metrics=m,
            evaluation="incremental",
        )
        assert (
            m.counter("eval.delta_matches")
            + m.counter("eval.volatile_rematched")
            + m.counter("eval.volatile_skipped_clean")
            > 0
        )
