"""All embedded doctests in the library must pass."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if module_info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, "%d doctest failure(s) in %s" % (
        result.failed,
        module_name,
    )
