"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main

RULES = """
@name(r1) p -> +q.
@name(r2) p -> -a.
@name(r3) q -> +a.
"""

ECA_RULES = "+account(X) -> +welcome(X)."


@pytest.fixture
def rules_file(tmp_path):
    path = tmp_path / "rules.park"
    path.write_text(RULES)
    return str(path)


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "facts.park"
    path.write_text("p.")
    return str(path)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestRun:
    def test_basic_run(self, rules_file, facts_file):
        code, output = run_cli("run", "--rules", rules_file, "--db", facts_file)
        assert code == 0
        assert "result: {p, q}" in output
        assert "blocked rules: r3" in output

    def test_trace_flag(self, rules_file, facts_file):
        code, output = run_cli(
            "run", "--rules", rules_file, "--db", facts_file, "--trace"
        )
        assert code == 0
        assert "(1)" in output
        assert "inconsistent" in output
        assert "fixpoint:" in output

    def test_stats_flag(self, rules_file, facts_file):
        code, output = run_cli(
            "run", "--rules", rules_file, "--db", facts_file, "--stats"
        )
        assert code == 0
        assert "restarts" in output

    def test_metrics_flag(self, rules_file, facts_file):
        code, output = run_cli(
            "run", "--rules", rules_file, "--db", facts_file, "--metrics"
        )
        assert code == 0
        assert "metrics:" in output
        assert "engine.rounds" in output
        assert "phase.match" in output

    def test_trace_out_writes_jsonl(self, rules_file, facts_file, tmp_path):
        import json

        trace_path = tmp_path / "run.trace.jsonl"
        code, _ = run_cli(
            "run", "--rules", rules_file, "--db", facts_file,
            "--trace-out", str(trace_path),
        )
        assert code == 0
        records = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        assert records[0]["name"] == "engine.run"
        assert all("dur" in r for r in records if r["type"] == "span")

    def test_trace_out_flushed_on_engine_error(self, tmp_path):
        import json

        rules = tmp_path / "chain.park"
        rules.write_text("p -> +q. q -> +r. r -> +s.")
        facts = tmp_path / "facts.park"
        facts.write_text("p.")
        trace_path = tmp_path / "partial.trace.jsonl"
        code, _ = run_cli(
            "run", "--rules", str(rules), "--db", str(facts),
            "--max-rounds", "2", "--trace-out", str(trace_path),
        )
        assert code == 2  # engine error still reported
        records = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        assert records, "partial trace must be flushed on engine errors"
        assert records[0]["name"] == "engine.run"

    def test_updates(self, tmp_path):
        rules = tmp_path / "eca.park"
        rules.write_text(ECA_RULES)
        code, output = run_cli(
            "run", "--rules", str(rules), "--update", "+account(u1)"
        )
        assert code == 0
        assert "welcome(u1)" in output

    def test_no_db_means_empty(self, rules_file):
        code, output = run_cli("run", "--rules", rules_file)
        assert code == 0
        assert "result: {}" in output

    def test_policy_selection(self, tmp_path):
        rules = tmp_path / "prio.park"
        rules.write_text(
            "@name(lo) @priority(1) p -> +x. @name(hi) @priority(2) p -> -x."
        )
        facts = tmp_path / "facts.park"
        facts.write_text("p. x.")
        _, inertia_out = run_cli("run", "--rules", str(rules), "--db", str(facts))
        assert "result: {p, x}" in inertia_out  # inertia keeps x (x ∈ D)
        _, priority_out = run_cli(
            "run", "--rules", str(rules), "--db", str(facts), "--policy", "priority"
        )
        assert "result: {p}" in priority_out  # hi (delete) wins

    def test_minimal_blocking(self, rules_file, facts_file):
        code, output = run_cli(
            "run", "--rules", rules_file, "--db", facts_file,
            "--blocking", "minimal",
        )
        assert code == 0
        assert "result: {p, q}" in output

    def test_random_policy_with_seed(self, rules_file, facts_file):
        code1, out1 = run_cli(
            "run", "--rules", rules_file, "--db", facts_file, "--policy", "random:9"
        )
        code2, out2 = run_cli(
            "run", "--rules", rules_file, "--db", facts_file, "--policy", "random:9"
        )
        assert code1 == code2 == 0
        assert out1 == out2


class TestErrors:
    def test_unknown_policy(self, rules_file, facts_file):
        code, _ = run_cli(
            "run", "--rules", rules_file, "--db", facts_file, "--policy", "bogus"
        )
        assert code == 2

    def test_bad_update_syntax(self, rules_file):
        code, _ = run_cli("run", "--rules", rules_file, "--update", "q(b)")
        assert code == 2

    def test_missing_file(self):
        code, _ = run_cli("run", "--rules", "/nonexistent/rules.park")
        assert code == 1

    def test_parse_error_in_rules(self, tmp_path):
        bad = tmp_path / "bad.park"
        bad.write_text("p -> q.")
        code, _ = run_cli("run", "--rules", str(bad))
        assert code == 2

    def test_usage_error(self):
        code, _ = run_cli("run")  # missing --rules
        assert code != 0


class TestCheck:
    def test_classification_output(self, rules_file):
        code, output = run_cli("check", "--rules", rules_file)
        assert code == 0
        assert "rules      : 3" in output
        assert "uses delete: True" in output

    def test_strata_printed_for_deductive_programs(self, tmp_path):
        rules = tmp_path / "strat.park"
        rules.write_text(
            "edge(Y, X) -> +reached(X). node(X), not reached(X) -> +isolated(X)."
        )
        code, output = run_cli("check", "--rules", str(rules))
        assert code == 0
        assert "stratum 0" in output
        assert "stratum 1" in output


class TestExplain:
    def test_explains_derivation(self, rules_file, facts_file):
        code, output = run_cli(
            "explain", "--rules", rules_file, "--db", facts_file, "--target", "+q"
        )
        assert code == 0
        assert output.startswith("+q")
        assert "base fact" in output

    def test_unknown_target(self, rules_file, facts_file):
        code, _ = run_cli(
            "explain", "--rules", rules_file, "--db", facts_file, "--target", "+zzz"
        )
        assert code == 2


class TestQueryCommand:
    def test_rows_output(self, tmp_path):
        facts = tmp_path / "facts.park"
        facts.write_text("payroll(joe, 10). payroll(ann, 20). active(ann).")
        code, output = run_cli(
            "query", "--db", str(facts),
            "--query", "payroll(X, S), not active(X)",
        )
        assert code == 0
        assert "S\tX" in output
        assert "10\tjoe" in output
        assert "(1 answer)" in output

    def test_ground_query_yes(self, tmp_path):
        facts = tmp_path / "facts.park"
        facts.write_text("p(a).")
        code, output = run_cli("query", "--db", str(facts), "--query", "p(a)")
        assert code == 0
        assert "yes" in output

    def test_no_answers(self, tmp_path):
        facts = tmp_path / "facts.park"
        facts.write_text("p(a).")
        code, output = run_cli("query", "--db", str(facts), "--query", "p(zzz)")
        assert code == 0
        assert "no answers" in output

    def test_unsafe_query_errors(self, tmp_path):
        facts = tmp_path / "facts.park"
        facts.write_text("p(a).")
        code, _ = run_cli("query", "--db", str(facts), "--query", "not p(X)")
        assert code == 2


class TestProfile:
    def test_profile_table(self, rules_file, facts_file):
        code, output = run_cli("profile", rules_file, "--db", facts_file)
        assert code == 0
        assert "PARK profile:" in output
        assert "per-phase breakdown" in output
        assert "per-rule hot spots" in output
        assert "r1" in output and "r3" in output
        assert "index efficiency:" in output

    def test_profile_quickstart_example(self):
        # The self-contained paper example must profile without a --db.
        code, output = run_cli("profile", "examples/quickstart.park")
        assert code == 0
        assert "epochs 2" in output
        assert "blocked 1" in output

    def test_profile_json(self, rules_file, facts_file):
        import json

        code, output = run_cli(
            "profile", rules_file, "--db", facts_file, "--json"
        )
        assert code == 0
        report = json.loads(output)
        assert report["run"]["epochs"] == 2
        assert report["meta"]["matcher"] in ("compiled", "interpreted")
        assert report["rules"]

    def test_profile_top_truncates(self, rules_file, facts_file):
        code, output = run_cli(
            "profile", rules_file, "--db", facts_file, "--top", "1"
        )
        assert code == 0
        assert "more rules" in output

    def test_profile_partial_on_engine_error(self, tmp_path):
        rules = tmp_path / "chain.park"
        rules.write_text("p -> +q. q -> +r. r -> +s.")
        facts = tmp_path / "facts.park"
        facts.write_text("p.")
        code, output = run_cli(
            "profile", str(rules), "--db", str(facts), "--max-rounds", "2"
        )
        assert code == 2
        assert "! run failed:" in output
        assert "partial telemetry" in output
        assert "per-phase breakdown" in output

    def test_profile_trace_out(self, rules_file, facts_file, tmp_path):
        import json

        trace_path = tmp_path / "profile.trace.jsonl"
        code, _ = run_cli(
            "profile", rules_file, "--db", facts_file,
            "--trace-out", str(trace_path),
        )
        assert code == 0
        lines = trace_path.read_text().splitlines()
        assert json.loads(lines[0])["name"] == "engine.run"

    def test_profile_evaluation_and_matcher_flags(self, rules_file, facts_file):
        from repro.engine.match import get_matcher_backend, set_matcher_backend

        previous = get_matcher_backend()
        try:
            code, output = run_cli(
                "profile", rules_file, "--db", facts_file,
                "--evaluation", "incremental", "--matcher", "interpreted",
            )
        finally:
            set_matcher_backend(previous)
        assert code == 0
        assert "evaluation=incremental" in output
        assert "matcher=interpreted" in output


class TestJournalCommand:
    @pytest.fixture
    def journal_file(self, tmp_path):
        from repro.active import ActiveDatabase

        path = tmp_path / "commits.journal"
        db = ActiveDatabase.from_text("p(a).", journal=str(path))
        db.insert("note", "pipe|and;semi")
        db.insert("q", "b")
        return str(path)

    def test_inspect_lists_records(self, journal_file):
        code, output = run_cli("journal", "inspect", journal_file)
        assert code == 0
        assert "2 records, tail: clean" in output

    def test_verify_clean(self, journal_file):
        code, output = run_cli("journal", "verify", journal_file)
        assert code == 0
        assert "ok: 2 records (2 v2), tail clean" in output

    def test_verify_missing_file_is_empty(self, tmp_path):
        code, output = run_cli(
            "journal", "verify", str(tmp_path / "absent.journal")
        )
        assert code == 0
        assert "0 records" in output

    def test_verify_torn_tail_warns_but_passes(self, journal_file):
        with open(journal_file, "a") as handle:
            handle.write("v2|tx=3|len=")
        code, output = run_cli("journal", "verify", journal_file)
        assert code == 0
        assert "tail torn" in output

    def test_verify_strict_fails_on_torn_tail(self, journal_file):
        with open(journal_file, "a") as handle:
            handle.write("v2|tx=3|len=")
        code, _ = run_cli("journal", "verify", "--strict", journal_file)
        assert code == 1

    def test_verify_fails_on_mid_journal_corruption(self, journal_file):
        with open(journal_file, "r") as handle:
            lines = handle.readlines()
        lines.insert(1, "garbage\n")
        with open(journal_file, "w") as handle:
            handle.writelines(lines)
        code, _ = run_cli("journal", "verify", journal_file)
        assert code == 1

    def test_repair_truncates_torn_tail(self, journal_file):
        import os

        clean_size = os.path.getsize(journal_file)
        with open(journal_file, "a") as handle:
            handle.write("v2|tx=3|len=")
        code, output = run_cli("journal", "repair", journal_file)
        assert code == 0
        assert "repaired" in output
        assert os.path.getsize(journal_file) == clean_size
        code, output = run_cli("journal", "repair", journal_file)
        assert code == 0
        assert "clean" in output

    def test_repair_refuses_mid_journal_corruption(self, journal_file):
        with open(journal_file, "r") as handle:
            lines = handle.readlines()
        lines.insert(1, "garbage\n")
        with open(journal_file, "w") as handle:
            handle.writelines(lines)
        code, _ = run_cli("journal", "repair", journal_file)
        assert code == 1

    def test_inspect_json(self, journal_file):
        import json

        code, output = run_cli("journal", "inspect", "--json", journal_file)
        assert code == 0
        report = json.loads(output)
        assert report["tail"] == "clean"
        assert [r["tx"] for r in report["records"]] == [1, 2]
        assert all(r["version"] == 2 for r in report["records"])


E3_RULES = """
@name(r1) p -> +q.
@name(r2) p -> -q.
@name(r3) q -> +a.
@name(r4) q -> -a.
@name(r5) p -> +a.
"""


class TestExplainWhyNot:
    @pytest.fixture
    def e3_file(self, tmp_path):
        path = tmp_path / "e3.park"
        path.write_text(E3_RULES)
        return str(path)

    def test_why_not_names_winning_side(self, e3_file, facts_file):
        code, output = run_cli(
            "explain", "--rules", e3_file, "--db", facts_file,
            "--target", "+q", "--why-not",
        )
        assert code == 0
        assert "why not +q?" in output
        assert "SELECT chose delete" in output
        assert "winning side: (r2)" in output
        assert "blocked instances: (r1)" in output

    def test_why_not_json(self, e3_file, facts_file):
        import json

        code, output = run_cli(
            "explain", "--rules", e3_file, "--db", facts_file,
            "--target", "+q", "--why-not", "--json",
        )
        assert code == 0
        verdict = json.loads(output)
        assert verdict["kind"] == "blocked"
        assert verdict["winner"] == "-q"
        assert verdict["winners"] == ["(r2)"]
        assert verdict["policy"] == "inertia"

    def test_explain_json_tree(self, rules_file, facts_file):
        import json

        code, output = run_cli(
            "explain", "--rules", rules_file, "--db", facts_file,
            "--target", "+q", "--json",
        )
        assert code == 0
        tree = json.loads(output)
        assert tree["update"] == "+q"
        assert tree["steps"][0]["rule"] == "r1"

    def test_why_not_never_matched(self, e3_file, facts_file):
        code, output = run_cli(
            "explain", "--rules", e3_file, "--db", facts_file,
            "--target=-a", "--why-not",
        )
        assert code == 0
        assert "never matched" in output


class TestAuditCommand:
    @pytest.fixture
    def audit_file(self, tmp_path):
        from repro.active import ActiveDatabase

        path = tmp_path / "commits.journal"
        db = ActiveDatabase.from_text(
            "u.", journal=str(path), audit=True
        )
        db.add_rules(
            "@name(r1) u -> +a. @name(r2) u -> -a. "
            "@name(r3) u -> +b. @name(r4) u -> -b."
        )
        db.insert("marker")
        db.insert("m2")
        return str(path) + ".audit"

    def test_inspect_lists_transactions(self, audit_file):
        code, output = run_cli("audit", "inspect", audit_file)
        assert code == 0
        assert "2 records, tail: clean" in output

    def test_show_reconstructs_verdicts_and_restarts(self, audit_file):
        # A fresh process (this CLI invocation) reads the file cold: every
        # SELECT verdict and the restart of the multi-conflict tx 1.
        code, output = run_cli("audit", "show", audit_file, "--tx", "1")
        assert code == 0
        assert "tx 1:" in output
        assert "tx 2:" not in output
        assert output.count("verdict") == 2
        assert "decision=delete" in output
        assert "winners=['(r2)']" in output
        assert "winners=['(r4)']" in output
        assert "restart" in output

    def test_atom_filter(self, audit_file):
        code, output = run_cli(
            "audit", "show", audit_file, "--tx", "1", "--atom", "a"
        )
        assert code == 0
        assert "atom=a" in output
        assert "atom=b" not in output

    def test_verify_clean(self, audit_file):
        code, output = run_cli("audit", "verify", audit_file)
        assert code == 0
        assert output.startswith("ok:")

    def test_verify_torn_tail_warns_but_passes(self, audit_file):
        with open(audit_file, "a") as handle:
            handle.write("a1|tx=9|len=99|crc=00000000|truncated")
        code, output = run_cli("audit", "verify", audit_file)
        assert code == 0
        assert "torn" in output
        code, _ = run_cli("audit", "verify", "--strict", audit_file)
        assert code == 1

    def test_verify_fails_on_mid_file_corruption(self, audit_file):
        with open(audit_file, "r") as handle:
            lines = handle.readlines()
        lines.insert(1, "garbage\n")
        with open(audit_file, "w") as handle:
            handle.writelines(lines)
        code, _ = run_cli("audit", "verify", audit_file)
        assert code == 1

    def test_json_report(self, audit_file):
        import json

        code, output = run_cli("audit", "inspect", "--json", audit_file)
        assert code == 0
        report = json.loads(output)
        assert report["tail"] == "clean"
        assert [r["tx"] for r in report["records"]] == [1, 2]
        assert all(r["restarts"] == 1 for r in report["records"])


class TestExportFlags:
    def test_run_prom_out(self, rules_file, facts_file, tmp_path):
        path = tmp_path / "metrics.prom"
        code, output = run_cli(
            "run", "--rules", rules_file, "--db", facts_file,
            "--prom-out", str(path),
        )
        assert code == 0
        assert "metrics:" not in output  # snapshot goes to the file only
        text = path.read_text()
        assert "# TYPE repro_engine_rounds counter" in text

    def test_run_chrome_out(self, rules_file, facts_file, tmp_path):
        import json

        path = tmp_path / "trace.json"
        code, _ = run_cli(
            "run", "--rules", rules_file, "--db", facts_file,
            "--chrome-out", str(path),
        )
        assert code == 0
        payload = json.loads(path.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert "engine.run" in names

    def test_profile_exports(self, rules_file, facts_file, tmp_path):
        import json

        prom = tmp_path / "metrics.prom"
        chrome = tmp_path / "trace.json"
        code, _ = run_cli(
            "profile", rules_file, "--db", facts_file,
            "--prom-out", str(prom), "--chrome-out", str(chrome),
        )
        assert code == 0
        assert "repro_engine_rounds" in prom.read_text()
        assert json.loads(chrome.read_text())["traceEvents"]
