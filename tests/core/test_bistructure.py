"""Tests for bi-structures and their Section 4.2 ordering."""

import pytest

from repro.core.bistructure import BiStructure, initial_bistructure
from repro.core.groundings import grounding
from repro.core.interpretation import IInterpretation
from repro.lang import parse_program
from repro.lang.atoms import atom
from repro.lang.updates import insert
from repro.storage.database import Database

PROGRAM = parse_program("@name(r1) p -> +a. @name(r2) p -> -a.")
G1 = grounding(PROGRAM[0])
G2 = grounding(PROGRAM[1])


def interp(text="p.", plus=()):
    i = IInterpretation.from_database(Database.from_text(text))
    i.add_updates([insert(a) for a in plus])
    return i


class TestConstruction:
    def test_initial(self):
        bs = initial_bistructure(Database.from_text("p."))
        assert bs.blocked == frozenset()
        assert bs.interpretation.has_unmarked(atom("p"))

    def test_captured_by_value(self):
        i = interp()
        bs = BiStructure(frozenset(), i)
        i.add_update(insert(atom("z")))
        assert not bs.interpretation.has_plus(atom("z"))

    def test_interpretation_property_returns_copy(self):
        bs = initial_bistructure(Database.from_text("p."))
        bs.interpretation.add_update(insert(atom("z")))
        assert not bs.interpretation.has_plus(atom("z"))

    def test_type_checked(self):
        with pytest.raises(TypeError):
            BiStructure(frozenset(), Database.from_text("p."))


class TestOrdering:
    def test_blocked_growth_dominates(self):
        smaller = BiStructure(frozenset(), interp(plus=[atom("x")]))
        larger = BiStructure(frozenset({G1}), interp())
        # B grows, I shrinks: still strictly increasing (first disjunct).
        assert smaller.precedes(larger)
        assert not larger.precedes(smaller)

    def test_equal_blocked_compares_interpretations(self):
        smaller = BiStructure(frozenset({G1}), interp())
        larger = BiStructure(frozenset({G1}), interp(plus=[atom("x")]))
        assert smaller.precedes(larger)
        assert not larger.precedes(smaller)

    def test_incomparable(self):
        left = BiStructure(frozenset({G1}), interp())
        right = BiStructure(frozenset({G2}), interp())
        assert not left.precedes(right)
        assert not right.precedes(left)

    def test_strictness(self):
        bs = BiStructure(frozenset({G1}), interp())
        assert not bs.precedes(bs)
        assert bs <= bs

    def test_le_means_eq_or_lt(self):
        a = BiStructure(frozenset(), interp())
        b = BiStructure(frozenset({G1}), interp())
        assert a <= b
        assert a <= a
        assert not b <= a

    def test_incomparable_interpretations(self):
        left = BiStructure(frozenset(), interp(plus=[atom("x")]))
        right = BiStructure(frozenset(), interp(plus=[atom("y")]))
        assert not left.precedes(right)
        assert not right.precedes(left)


class TestIdentity:
    def test_equality_and_hash(self):
        a = BiStructure(frozenset({G1}), interp())
        b = BiStructure(frozenset({G1}), interp())
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_str_mentions_blocked(self):
        assert "r1" in str(BiStructure(frozenset({G1}), interp()))
