"""The runtime independence sanitizer (``repro.testing.sanitize``).

The core test falsifies a certificate on purpose: take the honest
``ProgramFacts`` of a program whose rules are *not* independent, swap in
a fabricated parallel group claiming they are, and check the sanitizer
trips on the first round that proves the claim wrong.
"""

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.engine import ParkEngine
from repro.errors import EngineError
from repro.lang import parse_database, parse_program
from repro.lint import ProgramFacts
from repro.lint.commutativity import ParallelGroup
from repro.obs import Metrics
from repro.storage.database import Database
from repro.testing import sanitize

REPO_ROOT = Path(__file__).resolve().parents[2]

CHAIN = parse_program(
    "@name(r1) p(X) -> +q(X). @name(r2) q(X) -> +r(X)."
)
SAME_WRITE = parse_program(
    "@name(w1) p(X) -> +q(X). @name(w2) s(X) -> +q(X)."
)


def falsified(program):
    """Honest facts with a fabricated all-in-one-group certificate."""
    facts = ProgramFacts.analyze(program)
    assert all(len(group.rules) == 1 for group in facts.parallel_groups)
    return dataclasses.replace(
        facts,
        parallel_groups=(ParallelGroup(stratum=0, rules=(0, 1)),),
        interference=(),
    )


@pytest.fixture
def active_sanitizer():
    previous = sanitize.set_active(sanitize.IndependenceSanitizer())
    try:
        yield sanitize.ACTIVE
    finally:
        sanitize.set_active(previous)


class TestFalsifiedCertificate:
    def test_read_write_violation_trips(self, active_sanitizer):
        engine = ParkEngine(facts=falsified(CHAIN))
        with pytest.raises(sanitize.SanitizerError) as err:
            engine.run(CHAIN, Database(parse_database("p(a).")))
        message = str(err.value)
        assert "certificate violated" in message
        assert "r1" in message and "r2" in message
        assert "q(a)" in message
        assert "one wrote and the other read" in message

    def test_write_write_violation_trips(self, active_sanitizer):
        engine = ParkEngine(facts=falsified(SAME_WRITE))
        with pytest.raises(sanitize.SanitizerError) as err:
            engine.run(SAME_WRITE, Database(parse_database("p(a). s(a).")))
        message = str(err.value)
        assert "w1" in message and "w2" in message
        assert "both wrote" in message

    def test_violation_counter_increments(self, active_sanitizer):
        metrics = Metrics()
        engine = ParkEngine(facts=falsified(CHAIN), metrics=metrics)
        with pytest.raises(sanitize.SanitizerError):
            engine.run(CHAIN, Database(parse_database("p(a).")))
        assert metrics.counters["sanitize.violations"] == 1


class TestHonestCertificate:
    def test_clean_run_passes(self, active_sanitizer):
        # quickstart's analysis certifies two groups of two; the run must
        # complete without the sanitizer firing.
        program = parse_program(
            "@name(init) -> +p. @name(r1) p -> +q. "
            "@name(r2) p -> -a. @name(r3) q -> +a."
        )
        metrics = Metrics()
        engine = ParkEngine(facts=True, metrics=metrics)
        result = engine.run(program, Database())
        assert result.blocked
        assert metrics.counters["sanitize.rounds_checked"] > 0
        assert "sanitize.violations" not in metrics.counters

    def test_singleton_groups_short_circuit(self, active_sanitizer):
        # Every group is a singleton: nothing to check, no counter.
        program = parse_program("p(X) -> +q(X). q(X) -> +r(X).")
        metrics = Metrics()
        engine = ParkEngine(facts=True, metrics=metrics)
        engine.run(program, Database(parse_database("p(a).")))
        assert "sanitize.rounds_checked" not in metrics.counters


class TestActivation:
    def test_default_matches_environment(self):
        # Disabled unless REPRO_SANITIZE opted this process in (the CI
        # sanitizer leg runs the whole suite with it on).
        spec = os.environ.get("REPRO_SANITIZE", "").strip().lower()
        if spec == "independence":
            assert isinstance(sanitize.ACTIVE, sanitize.IndependenceSanitizer)
        else:
            assert sanitize.ACTIVE is None

    def test_from_spec(self):
        assert sanitize.from_spec(None) is None
        assert sanitize.from_spec("") is None
        built = sanitize.from_spec("independence")
        assert isinstance(built, sanitize.IndependenceSanitizer)
        with pytest.raises(ValueError):
            sanitize.from_spec("bogus")

    def test_set_active_returns_previous(self):
        baseline = sanitize.set_active(None)
        try:
            first = sanitize.IndependenceSanitizer()
            assert sanitize.set_active(first) is None
            assert sanitize.set_active(None) is first
        finally:
            sanitize.set_active(baseline)

    def test_error_maps_to_cli_exit_two(self):
        # The CLI turns EngineError into exit code 2; SanitizerError rides
        # that path.
        assert issubclass(sanitize.SanitizerError, EngineError)

    @pytest.mark.parametrize(
        "value, expected", [("independence", "True"), ("unknown", "False")]
    )
    def test_environment_activation(self, value, expected):
        env = dict(os.environ)
        env["REPRO_SANITIZE"] = value
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.testing import sanitize; "
                "print(sanitize.ACTIVE is not None)",
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == expected


class TestCliFlag:
    def test_run_sanitize_flag(self, tmp_path):
        import io

        from repro.cli import main

        rules = tmp_path / "rules.park"
        rules.write_text("p(X) -> +q(X). r(X) -> +s(X).")
        db = tmp_path / "db.park"
        db.write_text("p(a). r(a).")
        before = sanitize.ACTIVE
        out = io.StringIO()
        code = main(
            [
                "run", "--rules", str(rules), "--db", str(db),
                "--sanitize", "independence",
            ],
            out=out,
        )
        assert code == 0
        assert "q(a)" in out.getvalue()
        assert sanitize.ACTIVE is before  # restored after the command
