"""Tests for the ECA extension: transaction updates as rules (Section 4.3)."""

import pytest

from repro.core.eca import extend_with_updates, is_transaction_rule, transaction_rules
from repro.core.engine import park
from repro.errors import EngineError
from repro.lang import parse_atom, parse_database, parse_program
from repro.lang.atoms import atom
from repro.lang.updates import delete, insert


class TestTransactionRules:
    def test_bodyless_named_rules(self):
        rules = transaction_rules([insert(atom("q", "b")), delete(atom("s", "a"))])
        assert all(r.is_fact_rule() for r in rules)
        assert [r.name for r in rules] == ["tx1", "tx2"]

    def test_deterministic_order(self):
        updates = [insert(atom("b")), insert(atom("a"))]
        rules = transaction_rules(updates)
        assert [str(r.head) for r in rules] == ["+a", "+b"]

    def test_nonground_rejected(self):
        with pytest.raises(EngineError, match="not ground"):
            transaction_rules([insert(atom("q", "X"))])

    def test_non_update_rejected(self):
        with pytest.raises(TypeError):
            transaction_rules([atom("q")])

    def test_is_transaction_rule(self):
        (rule,) = transaction_rules([insert(atom("q"))])
        assert is_transaction_rule(rule)
        assert not is_transaction_rule(parse_program("p -> +q.")[0])


class TestExtendWithUpdates:
    def test_pu_contains_both(self):
        program = parse_program("@name(r1) p -> +q.")
        pu = extend_with_updates(program, [insert(atom("z"))])
        assert len(pu) == 2
        assert pu.by_name("tx1").head == insert(atom("z"))

    def test_empty_updates_returns_same_program(self):
        program = parse_program("p -> +q.")
        assert extend_with_updates(program, []) is program

    def test_name_collision_avoided(self):
        program = parse_program("@name(tx1) p -> +q.")
        pu = extend_with_updates(program, [insert(atom("z"))])
        names = [r.name for r in pu if r.name]
        assert len(names) == len(set(names))


class TestEcaSemantics:
    def test_paper_example_1(self, eca1):
        program, database, updates = eca1
        result = park(program, database, updates=updates)
        assert result.atoms == frozenset(
            parse_database("p(a). q(a). q(b). r(a). r(b).")
        )
        assert result.stats.restarts == 0

    def test_paper_example_2(self, eca2):
        program, database, updates = eca2
        result = park(program, database, updates=updates)
        # The paper's final answer modulo its typo: q(a, a) is a transaction
        # insert and survives incorp (see EXPERIMENTS.md, E6).
        assert result.atoms == frozenset(
            parse_database("p(a, a). p(a, b). p(a, c). q(a, a). r(a, a).")
        )
        assert result.blocked_rules() == ["r1"]
        assert result.stats.restarts == 1

    def test_update_survives_restart(self):
        # The whole point of modelling U as rules: after a conflict restart
        # the transaction update is re-derived, not lost.
        program = parse_program("""
        @name(r1) q(X) -> +a.
        @name(r2) q(X) -> -a.
        """)
        result = park(program, "", updates=[insert(atom("q", "b"))])
        assert atom("q", "b") in result
        assert result.stats.restarts == 1

    def test_conflicting_transaction_updates_resolved_by_policy(self):
        # +a and -a staged in the same transaction: inertia keeps status quo.
        result = park("", "p.", updates=[insert(atom("a")), delete(atom("a"))])
        assert result.atoms == frozenset({atom("p")})

        result2 = park("", "a. p.", updates=[insert(atom("a")), delete(atom("a"))])
        assert result2.atoms == frozenset({atom("a"), atom("p")})

    def test_rule_may_overwrite_transaction_update(self):
        # Paper: "we allow a transaction's update to be overwritten".
        # Inertia with q ∈ D keeps q against the transaction's delete.
        program = parse_program("@name(keep) p -> +q.")
        result = park(program, "p. q.", updates=[delete(atom("q"))])
        assert atom("q") in result

    def test_event_triggering_chain(self):
        program = parse_program("""
        +account(X) -> +welcome(X).
        +welcome(X) -> +mail_queued(X).
        """)
        result = park(program, "", updates=[insert(atom("account", "u1"))])
        assert atom("mail_queued", "u1") in result
