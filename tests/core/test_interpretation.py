"""Tests for i-interpretations."""

import pytest

from repro.core.interpretation import IInterpretation
from repro.lang.atoms import atom
from repro.lang.updates import delete, insert
from repro.storage.database import Database


def interp(unmarked="", plus=(), minus=()):
    text = unmarked.strip()
    if text and not text.endswith("."):
        text += "."
    i = IInterpretation.from_database(Database.from_text(text))
    for a in plus:
        i.add_update(insert(a))
    for a in minus:
        i.add_update(delete(a))
    return i


class TestParts:
    def test_from_database_unmarked_only(self):
        i = IInterpretation.from_database(Database.from_text("p. q(a)."))
        assert i.has_unmarked(atom("p"))
        assert not i.has_plus(atom("p"))
        assert i.marked_count() == 0
        assert len(i) == 2

    def test_add_update_routes_by_op(self):
        i = interp("p")
        assert i.add_update(insert(atom("q")))
        assert i.has_plus(atom("q"))
        assert i.add_update(delete(atom("r")))
        assert i.has_minus(atom("r"))

    def test_add_duplicate_returns_false(self):
        i = interp("p", plus=[atom("q")])
        assert not i.add_update(insert(atom("q")))

    def test_has_update(self):
        i = interp("p", plus=[atom("q")], minus=[atom("r")])
        assert i.has_update(insert(atom("q")))
        assert i.has_update(delete(atom("r")))
        assert not i.has_update(delete(atom("q")))

    def test_add_updates_counts_new(self):
        i = interp("p")
        added = i.add_updates([insert(atom("q")), insert(atom("q")), delete(atom("s"))])
        assert added == 2

    def test_source_database_not_aliased(self):
        db = Database.from_text("p.")
        i = IInterpretation.from_database(db)
        db.add(atom("zzz"))
        assert not i.has_unmarked(atom("zzz"))


class TestConsistency:
    def test_consistent_initially(self):
        assert interp("p").is_consistent()

    def test_marked_pair_inconsistent(self):
        i = interp("p", plus=[atom("a")], minus=[atom("a")])
        assert not i.is_consistent()
        assert i.conflicting_atoms() == [atom("a")]

    def test_unmarked_plus_minus_disjoint_atoms_consistent(self):
        # +a with unmarked a (no -a) is fine.
        i = interp("a", plus=[atom("a")])
        assert i.is_consistent()

    def test_would_conflict(self):
        i = interp("p", minus=[atom("a")])
        assert i.would_conflict(insert(atom("a")))
        assert not i.would_conflict(insert(atom("b")))
        assert not i.would_conflict(delete(atom("a")))


class TestValueSemantics:
    def test_copy_independent(self):
        i = interp("p", plus=[atom("q")])
        clone = i.copy()
        clone.add_update(insert(atom("z")))
        assert not i.has_plus(atom("z"))

    def test_freeze_triple(self):
        i = interp("p", plus=[atom("q")], minus=[atom("r")])
        unmarked, plus, minus = i.freeze()
        assert unmarked == frozenset({atom("p")})
        assert plus == frozenset({atom("q")})
        assert minus == frozenset({atom("r")})

    def test_equality(self):
        assert interp("p", plus=[atom("q")]) == interp("p", plus=[atom("q")])
        assert interp("p") != interp("p", plus=[atom("q")])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(interp("p"))

    def test_issubset(self):
        small = interp("p")
        large = interp("p", plus=[atom("q")])
        assert small.issubset(large)
        assert not large.issubset(small)

    def test_restarted_keeps_only_unmarked(self):
        i = interp("p", plus=[atom("q")], minus=[atom("r")])
        fresh = i.restarted()
        assert fresh == interp("p")
        # original untouched
        assert i.has_plus(atom("q"))

    def test_updates_sorted(self):
        i = interp("", plus=[atom("b")], minus=[atom("a")])
        assert [str(u) for u in i.updates()] == ["+b", "-a"]

    def test_str_paper_notation(self):
        i = interp("p", plus=[atom("q")], minus=[atom("a")])
        assert str(i) == "{-a, p, +q}"
