"""Edge cases across the core: exotic constants, arities, recursion depth,
re-entrant rules, and interpretation-view corner cases."""

import pytest

from repro.core.engine import park
from repro.core.interpretation import IInterpretation
from repro.core.validity import InterpretationView
from repro.lang import parse_database, parse_program
from repro.lang.atoms import Atom, atom
from repro.lang.terms import Constant, Variable
from repro.lang.program import Program
from repro.lang.rules import Rule
from repro.lang.literals import pos
from repro.lang.updates import insert
from repro.storage.database import Database


class TestExoticConstants:
    def test_mixed_value_types_in_one_relation(self):
        result = park(
            "score(Who, N) -> +seen(Who).",
            Database(
                [atom("score", "alice", 10), atom("score", 7, "ten")]
            ),
        )
        assert atom("seen", "alice") in result
        assert atom("seen", 7) in result

    def test_string_vs_int_constants_distinct(self):
        result = park(
            "p(1) -> +int_one. p(x1) -> +sym_one.",
            Database([atom("p", 1)]),
        )
        assert atom("int_one") in result
        assert atom("sym_one") not in result

    def test_quoted_constants_flow_through_engine(self):
        # "New York" starts upper-case, so it must be built as an explicit
        # Constant (the atom() helper would read it as a variable).
        ny = Atom("city", (Constant("New York"),))
        result = park("city(X) -> +greeted(X).", Database([ny, atom("city", "ulm")]))
        assert Atom("greeted", (Constant("New York"),)) in result

    def test_negative_integers(self):
        result = park("delta(-3) -> +negative_seen.", "delta(-3).")
        assert atom("negative_seen") in result


class TestShapes:
    def test_wide_atoms(self):
        arity = 10
        variables = tuple(Variable("V%d" % i) for i in range(arity))
        rule = Rule(
            head=insert(Atom("copy", variables)),
            body=(pos(Atom("wide", variables)),),
        )
        row = Atom("wide", tuple(Constant(i) for i in range(arity)))
        result = park(Program((rule,)), Database([row]))
        assert result.database.count("copy") == 1

    def test_deep_recursion_long_chain(self):
        # 300 Γ rounds; recursion depth must not track rounds.
        from repro.workloads import propositional_chain

        workload = propositional_chain(300)
        workload.check(workload.run())

    def test_rule_feeding_itself(self):
        # p(X) -> +p(s-of-X) is impossible (no function symbols); but a
        # binary relation can walk itself: closure terminates on cycles.
        result = park(
            "next(X, Y), on(X) -> +on(Y).",
            "next(a, b). next(b, c). next(c, a). on(a).",
        )
        assert result.database.count("on") == 3

    def test_same_rule_twice_anonymous(self):
        rule = parse_program("p -> +q.")[0]
        result = park(Program((rule, rule)), "p.")
        assert atom("q") in result

    def test_head_with_constants_only(self):
        result = park("p(X) -> +total.", "p(a). p(b). p(c).")
        assert result.atoms == frozenset(parse_database("p(a). p(b). p(c). total."))


class TestInterpretationViewCorners:
    def test_arity_mismatch_yields_no_candidates(self):
        interpretation = IInterpretation.from_database(
            Database([atom("p", "a")])
        )
        view = InterpretationView(interpretation)
        assert list(view.condition_candidates("p", 2, {})) == []

    def test_predicate_only_in_plus_store(self):
        interpretation = IInterpretation.from_database(Database())
        interpretation.add_update(insert(atom("fresh", "a")))
        view = InterpretationView(interpretation)
        assert set(view.condition_candidates("fresh", 1, {})) == {("a",)}

    def test_same_atom_unmarked_and_plus_yields_duplicate_candidates(self):
        # The matcher deduplicates via bindings; the view may overlap.
        interpretation = IInterpretation.from_database(Database([atom("p", "a")]))
        interpretation.add_update(insert(atom("p", "a")))
        result = park("p(X) -> +seen(X).", Database([atom("p", "a")]))
        assert result.database.count("seen") == 1


class TestZeroAryEverything:
    def test_propositional_eca(self):
        result = park("+go -> +started.", "", updates=[insert(atom("go"))])
        assert result.atoms == frozenset({atom("go"), atom("started")})

    def test_zero_ary_conflict(self):
        result = park("go -> +flag. go -> -flag.", "go. flag.")
        assert atom("flag") in result  # inertia keeps it

    def test_empty_everything(self):
        result = park("", "")
        assert result.atoms == frozenset()
        assert result.stats.rounds == 1
        assert result.stats.restarts == 0
