"""Tests for the Θ operator (the pure step function)."""

import pytest

from repro.core.bistructure import BiStructure, initial_bistructure
from repro.core.blocking import BlockingMode
from repro.core.provenance import Provenance
from repro.core.transition import theta, theta_omega
from repro.errors import NonTerminationError
from repro.lang import parse_program
from repro.lang.atoms import atom
from repro.policies.base import Decision, SelectPolicy
from repro.policies.inertia import InertiaPolicy
from repro.storage.database import Database

P1 = parse_program("""
@name(r1) p -> +q.
@name(r2) p -> -a.
@name(r3) q -> +a.
""")


class TestThetaStep:
    def test_consistent_round_grows_interpretation(self):
        database = Database.from_text("p.")
        step = theta(P1, initial_bistructure(database), InertiaPolicy(), database)
        assert step.kind == "grow"
        assert step.before.precedes(step.after)
        assert step.after.blocked == frozenset()

    def test_conflict_round_grows_blocked_and_resets(self):
        database = Database.from_text("p.")
        current = initial_bistructure(database)
        policy = InertiaPolicy()
        provenance = Provenance()
        kinds = []
        for _ in range(10):
            step = theta(P1, current, policy, database, provenance=provenance)
            kinds.append(step.kind)
            if step.kind == "fixpoint":
                break
            current = step.after
        assert "resolve" in kinds
        assert kinds[-1] == "fixpoint"
        resolve = kinds.index("resolve")
        # after resolving, the interpretation restarted from I∅
        assert current.blocked != frozenset()

    def test_resolve_step_reports_conflicts_and_decisions(self):
        program = parse_program("@name(r1) p -> +a. @name(r2) p -> -a.")
        database = Database.from_text("p.")
        step = theta(program, initial_bistructure(database), InertiaPolicy(), database)
        assert step.kind == "resolve"
        assert len(step.conflicts) == 1
        ((conflict, decision),) = step.decisions
        assert decision is Decision.DELETE  # a not in D
        assert {g.rule.name for g in step.blocked_added} == {"r1"}
        # restart component: only I∅ survives
        assert step.after.interpretation.marked_count() == 0

    def test_fixpoint_step_idempotent(self):
        program = parse_program("p -> +q.")
        database = Database.from_text("p.")
        first = theta(program, initial_bistructure(database), InertiaPolicy(), database)
        second = theta(program, first.after, InertiaPolicy(), database)
        assert second.kind == "fixpoint"
        assert second.after == first.after

    def test_stuck_policy_raises(self):
        # A policy that cannot be called is irrelevant: progress check is on
        # the blocked set.  Simulate no-progress by pre-blocking both sides.
        program = parse_program("@name(r1) p -> +a. @name(r2) p -> -a.")
        database = Database.from_text("p.")
        from repro.core.groundings import grounding

        blocked = frozenset({grounding(program[0]), grounding(program[1])})
        start = BiStructure(blocked, initial_bistructure(database).interpretation)
        step = theta(program, start, InertiaPolicy(), database)
        # With both sides blocked there is no conflict at all: just fixpoint.
        assert step.kind == "fixpoint"


class TestThetaOmega:
    def test_matches_engine_on_p1(self, p1):
        program, database = p1
        fixpoint, _ = theta_omega(program, database, InertiaPolicy())
        from repro.core.incorporate import incorp

        final = incorp(fixpoint.interpretation)
        assert final == Database.from_text("p. q.")

    def test_collect_steps(self):
        database = Database.from_text("p.")
        _, steps = theta_omega(P1, database, InertiaPolicy(), collect=True)
        assert steps[-1].kind == "fixpoint"
        assert any(s.kind == "resolve" for s in steps)

    def test_step_budget(self):
        database = Database.from_text("p.")
        with pytest.raises(NonTerminationError):
            theta_omega(P1, database, InertiaPolicy(), max_steps=1)

    def test_minimal_mode_more_restarts(self):
        program = parse_program("""
        @name(i1) p -> +a. @name(d1) p -> -a.
        @name(i2) p -> +b. @name(d2) p -> -b.
        """)
        database = Database.from_text("p.")
        _, all_steps = theta_omega(
            program, database, InertiaPolicy(), mode=BlockingMode.ALL, collect=True
        )
        _, minimal_steps = theta_omega(
            program, database, InertiaPolicy(), mode=BlockingMode.MINIMAL, collect=True
        )
        count = lambda steps: sum(1 for s in steps if s.kind == "resolve")
        assert count(all_steps) == 1
        assert count(minimal_steps) == 2

    def test_same_final_database_both_modes(self):
        program = parse_program("""
        @name(i1) p -> +a. @name(d1) p -> -a.
        @name(i2) p -> +b. @name(d2) p -> -b.
        """)
        database = Database.from_text("p.")
        from repro.core.incorporate import incorp

        fp_all, _ = theta_omega(program, database, InertiaPolicy(), mode=BlockingMode.ALL)
        fp_min, _ = theta_omega(
            program, database, InertiaPolicy(), mode=BlockingMode.MINIMAL
        )
        assert incorp(fp_all.interpretation) == incorp(fp_min.interpretation)
