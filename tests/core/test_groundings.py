"""Tests for rule groundings."""

import pytest

from repro.core.groundings import RuleGrounding, grounding, sort_groundings
from repro.lang import parse_rule, substitution
from repro.lang.atoms import atom
from repro.lang.updates import insert

RULE = parse_rule("@name(r1) p(X), s(X, Y) -> +q(X).")


class TestConstruction:
    def test_valid_grounding(self):
        g = grounding(RULE, substitution(X="a", Y="b"))
        assert g.rule is RULE

    def test_substitution_must_cover_exactly(self):
        with pytest.raises(ValueError, match="unbound: Y"):
            grounding(RULE, substitution(X="a"))
        with pytest.raises(ValueError, match="spurious: Z"):
            grounding(RULE, substitution(X="a", Y="b", Z="c"))

    def test_propositional_rule_empty_substitution(self):
        rule = parse_rule("p -> +q.")
        g = grounding(rule)
        assert len(g.substitution) == 0

    def test_mapping_coerced(self):
        from repro.lang.terms import Constant, Variable

        g = RuleGrounding(RULE, {Variable("X"): Constant("a"),
                                 Variable("Y"): Constant("b")})
        assert g.substitution == substitution(X="a", Y="b")


class TestBehaviour:
    def test_ground_head(self):
        g = grounding(RULE, substitution(X="a", Y="b"))
        assert g.ground_head() == insert(atom("q", "a"))

    def test_ground_body(self):
        g = grounding(RULE, substitution(X="a", Y="b"))
        body = g.ground_body()
        assert [str(l) for l in body] == ["p(a)", "s(a, b)"]

    def test_equality_and_hash(self):
        g1 = grounding(RULE, substitution(X="a", Y="b"))
        g2 = grounding(RULE, substitution(X="a", Y="b"))
        g3 = grounding(RULE, substitution(X="a", Y="c"))
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != g3
        assert len({g1, g2, g3}) == 2

    def test_str_uses_rule_name(self):
        g = grounding(RULE, substitution(X="a", Y="b"))
        assert str(g) == "(r1, [X <- a, Y <- b])"

    def test_str_propositional(self):
        g = grounding(parse_rule("@name(r2) p -> +q."))
        assert str(g) == "(r2)"

    def test_sort_deterministic(self):
        gs = {
            grounding(RULE, substitution(X="b", Y="a")),
            grounding(RULE, substitution(X="a", Y="b")),
        }
        ordered = sort_groundings(gs)
        assert [str(g.substitution) for g in ordered] == [
            "[X <- a, Y <- b]",
            "[X <- b, Y <- a]",
        ]
