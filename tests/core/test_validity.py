"""Tests for literal validity — the exact definitions of Sections 4.2/4.3."""

import pytest

from repro.core.interpretation import IInterpretation
from repro.core.validity import InterpretationView, rule_instance_valid, valid
from repro.errors import EngineError
from repro.lang import parse_rule, substitution
from repro.lang.atoms import atom
from repro.lang.literals import neg, on_delete, on_insert, pos
from repro.lang.updates import delete, insert
from repro.storage.database import Database


def interp(unmarked="", plus=(), minus=()):
    text = unmarked.strip()
    if text and not text.endswith("."):
        text += "."
    i = IInterpretation.from_database(Database.from_text(text))
    i.add_updates([insert(a) for a in plus])
    i.add_updates([delete(a) for a in minus])
    return i


class TestPositiveConditions:
    """a valid iff I ∩ {a, +a} != ∅."""

    def test_unmarked_atom(self):
        assert valid(pos(atom("p")), interp("p"))

    def test_plus_marked_atom(self):
        assert valid(pos(atom("p")), interp("", plus=[atom("p")]))

    def test_absent_atom(self):
        assert not valid(pos(atom("p")), interp("q"))

    def test_minus_mark_does_not_invalidate(self):
        # Per the paper, -a in I does NOT make positive a invalid if a ∈ I.
        i = interp("p", minus=[atom("p")])
        assert valid(pos(atom("p")), i)

    def test_minus_alone_not_valid(self):
        assert not valid(pos(atom("p")), interp("", minus=[atom("p")]))


class TestNegatedConditions:
    """not b valid iff -b ∈ I or {b, +b} ∩ I = ∅."""

    def test_absent_atom(self):
        assert valid(neg(atom("b")), interp("p"))

    def test_unmarked_atom_blocks(self):
        assert not valid(neg(atom("b")), interp("b"))

    def test_plus_mark_blocks(self):
        assert not valid(neg(atom("b")), interp("", plus=[atom("b")]))

    def test_minus_mark_enables_even_when_present(self):
        # -b ∈ I makes 'not b' valid regardless of b's presence.
        assert valid(neg(atom("b")), interp("b", minus=[atom("b")]))

    def test_minus_mark_beats_plus_mark(self):
        # With both marks (inconsistent I), the first disjunct applies.
        assert valid(neg(atom("b")), interp("", plus=[atom("b")], minus=[atom("b")]))


class TestEventLiterals:
    """±a valid iff exactly that mark is in I (Section 4.3)."""

    def test_insert_event(self):
        assert valid(on_insert(atom("a")), interp("", plus=[atom("a")]))
        assert not valid(on_insert(atom("a")), interp("a"))

    def test_delete_event(self):
        assert valid(on_delete(atom("a")), interp("", minus=[atom("a")]))
        assert not valid(on_delete(atom("a")), interp("", plus=[atom("a")]))

    def test_unmarked_atom_triggers_no_event(self):
        i = interp("a")
        assert not valid(on_insert(atom("a")), i)
        assert not valid(on_delete(atom("a")), i)


class TestErrors:
    def test_nonground_literal_rejected(self):
        with pytest.raises(EngineError):
            valid(pos(atom("p", "X")), interp(""))

    def test_non_literal_rejected(self):
        with pytest.raises(TypeError):
            valid(atom("p"), interp(""))


class TestInterpretationView:
    def setup_method(self):
        self.i = interp("p(a). p(b).", plus=[atom("p", "c"), atom("r", "a")],
                        minus=[atom("s", "a")])
        self.view = InterpretationView(self.i)

    def test_condition_candidates_union_unmarked_and_plus(self):
        rows = set(self.view.condition_candidates("p", 1, {}))
        assert rows == {("a",), ("b",), ("c",)}

    def test_condition_candidates_bound(self):
        rows = set(self.view.condition_candidates("p", 1, {0: "c"}))
        assert rows == {("c",)}

    def test_event_candidates(self):
        from repro.lang.updates import UpdateOp

        assert set(self.view.event_candidates(UpdateOp.INSERT, "r", 1, {})) == {("a",)}
        assert set(self.view.event_candidates(UpdateOp.DELETE, "s", 1, {})) == {("a",)}
        assert set(self.view.event_candidates(UpdateOp.INSERT, "s", 1, {})) == set()

    def test_view_agrees_with_valid(self):
        assert self.view.condition_holds(atom("p", "c"))
        assert self.view.negation_holds(atom("s", "a"))
        assert not self.view.negation_holds(atom("p", "a"))

    def test_estimate(self):
        assert self.view.estimate("p") == 3


class TestRuleInstanceValidity:
    def test_full_instance(self):
        rule = parse_rule("p(X), not q(X) -> +r(X).")
        i = interp("p(a). q(b).")
        assert rule_instance_valid(rule, substitution(X="a"), i)
        i2 = interp("p(b). q(b).")
        assert not rule_instance_valid(rule, substitution(X="b"), i2)
