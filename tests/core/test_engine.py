"""Tests for the production PARK engine."""

import pytest

from repro.core.blocking import BlockingMode
from repro.core.engine import EngineListener, ParkEngine, park
from repro.errors import NonTerminationError
from repro.lang import parse_database, parse_program
from repro.lang.atoms import atom
from repro.lang.updates import insert
from repro.policies.inertia import InertiaPolicy
from repro.storage.database import Database


class TestRunBasics:
    def test_accepts_text_inputs(self):
        result = park("p -> +q.", "p.")
        assert result.atoms == frozenset(parse_database("p. q."))

    def test_accepts_objects(self):
        program = parse_program("p -> +q.")
        database = Database.from_text("p.")
        result = park(program, database)
        assert atom("q") in result

    def test_accepts_rule_iterables_and_atom_sets(self):
        program = parse_program("p -> +q.")
        result = park(list(program), {atom("p")})
        assert atom("q") in result

    def test_input_database_not_modified(self):
        database = Database.from_text("p.")
        park("p -> +q.", database)
        assert len(database) == 1

    def test_empty_program(self):
        result = park("", "p. q.")
        assert result.atoms == frozenset(parse_database("p. q."))
        assert result.stats.rounds == 1

    def test_empty_database(self):
        result = park("p -> +q.", "")
        assert result.atoms == frozenset()

    def test_delta_reported(self):
        result = park("p -> +q. p -> -p2.", "p. p2.")
        assert result.delta.inserts == frozenset({atom("q")})
        assert result.delta.deletes == frozenset({atom("p2")})

    def test_default_policy_is_inertia(self):
        assert park("p -> +q.", "p.").policy_name == "inertia"


class TestStats:
    def test_conflict_free_run(self):
        result = park("p -> +q. q -> +r.", "p.")
        assert result.stats.restarts == 0
        assert result.stats.conflicts_resolved == 0
        assert result.stats.blocked_instances == 0
        assert result.stats.epochs == 1
        # 2 derivation rounds + 1 fixpoint confirmation
        assert result.stats.rounds == 3

    def test_conflicted_run(self, p1):
        program, database = p1
        result = park(program, database)
        assert result.stats.restarts == 1
        assert result.stats.conflicts_resolved == 1
        assert result.stats.blocked_instances == 1
        assert result.stats.epochs == 2

    def test_firings_counted(self):
        result = park("p -> +q.", "p.")
        assert result.stats.firings_total >= 1

    def test_firings_total_without_listeners(self):
        """firings_total accumulates whether or not anyone is listening.

        Regression test: the count used to ride a listener-only branch,
        so plain ``park(...)`` calls reported 0.
        """
        program = "p -> +q. q -> +r."
        silent = park(program, "p.")
        assert silent.stats.firings_total > 0

        from repro.analysis.trace import TraceRecorder
        from repro.core.engine import ParkEngine

        recorder = TraceRecorder()
        listened = ParkEngine(listeners=[recorder]).run(program, "p.")
        assert silent.stats.firings_total == listened.stats.firings_total


class TestBudgets:
    def test_max_rounds(self):
        with pytest.raises(NonTerminationError, match="max_rounds"):
            park("p -> +q. q -> +r. r -> +s.", "p.", max_rounds=2)

    def test_max_restarts(self):
        program = """
        @name(i1) p -> +a. @name(d1) p -> -a.
        @name(i2) a2 -> +b. @name(d2) a2 -> -b.
        """
        with pytest.raises(NonTerminationError, match="max_restarts"):
            park(program, "p. a2.", max_restarts=0, blocking_mode=BlockingMode.MINIMAL)


class TestListeners:
    def test_event_sequence(self, p1):
        program, database = p1

        class Collector(EngineListener):
            def __init__(self):
                self.calls = []

            def on_start(self, *args):
                self.calls.append("start")

            def on_round(self, *args):
                self.calls.append("round")

            def on_apply(self, *args):
                self.calls.append("apply")

            def on_conflicts(self, *args):
                self.calls.append("conflicts")

            def on_restart(self, *args):
                self.calls.append("restart")

            def on_fixpoint(self, *args):
                self.calls.append("fixpoint")

            def on_finish(self, *args):
                self.calls.append("finish")

        collector = Collector()
        ParkEngine(listeners=[collector]).run(program, database)
        assert collector.calls[0] == "start"
        assert collector.calls[-2:] == ["fixpoint", "finish"]
        assert "conflicts" in collector.calls
        restart_index = collector.calls.index("restart")
        assert collector.calls[restart_index - 1] == "conflicts"

    def test_engine_reusable(self, p1):
        program, database = p1
        engine = ParkEngine()
        first = engine.run(program, database)
        second = engine.run(program, database)
        assert first.atoms == second.atoms


class TestDeterminism:
    def test_repeated_runs_identical(self, p2):
        program, database = p2
        results = {park(program, database).atoms for _ in range(5)}
        assert len(results) == 1

    def test_result_consistent_interpretation(self, p3):
        program, database = p3
        result = park(program, database)
        assert result.interpretation.is_consistent()

    def test_unmarked_part_invariant(self, p2):
        # I∅ never changes during a run: it equals the input D.
        program, database = p2
        result = park(program, database)
        assert result.interpretation.unmarked == database


class TestResultApi:
    def test_contains(self):
        result = park("p -> +q.", "p.")
        assert atom("q") in result

    def test_blocked_rules_names(self, p1):
        program, database = p1
        assert park(program, database).blocked_rules() == ["r3"]

    def test_summary_mentions_policy(self):
        assert "inertia" in park("p -> +q.", "p.").summary()

    def test_updates_roundtrip_through_engine(self):
        result = park("+q(X) -> +r(X).", "", updates=[insert(atom("q", "b"))])
        assert result.atoms == frozenset({atom("q", "b"), atom("r", "b")})
