"""Tests for provenance recording."""

from repro.core.consequence import gamma
from repro.core.groundings import grounding
from repro.core.interpretation import IInterpretation
from repro.core.provenance import Provenance
from repro.lang import parse_program
from repro.lang.atoms import atom
from repro.lang.updates import insert
from repro.storage.database import Database


def interp(text):
    return IInterpretation.from_database(Database.from_text(text))


class TestRecording:
    def test_record_and_query(self):
        program = parse_program("@name(r1) p -> +q.")
        provenance = Provenance()
        result = gamma(program, frozenset(), interp("p."))
        provenance.record(result.firings, round_number=1)
        derivers = provenance.derivers(insert(atom("q")))
        assert derivers == frozenset({grounding(program[0])})
        assert provenance.first_round(insert(atom("q"))) == 1

    def test_merge_across_rounds(self):
        program = parse_program("@name(r1) p -> +q. @name(r2) s -> +q.")
        provenance = Provenance()
        result1 = gamma(parse_program("@name(r1) p -> +q."), frozenset(), interp("p."))
        provenance.record(result1.firings, round_number=1)
        result2 = gamma(parse_program("@name(r2) s -> +q."), frozenset(), interp("s."))
        provenance.record(result2.firings, round_number=2)
        assert len(provenance.derivers(insert(atom("q")))) == 2
        # first_round keeps the earliest sighting
        assert provenance.first_round(insert(atom("q"))) == 1

    def test_unknown_update_empty(self):
        provenance = Provenance()
        assert provenance.derivers(insert(atom("zzz"))) == frozenset()
        assert provenance.first_round(insert(atom("zzz"))) is None

    def test_clear(self):
        program = parse_program("@name(r1) p -> +q.")
        provenance = Provenance()
        provenance.record(gamma(program, frozenset(), interp("p.")).firings)
        provenance.clear()
        assert len(provenance) == 0
        assert insert(atom("q")) not in provenance

    def test_copy_independent(self):
        program = parse_program("@name(r1) p -> +q.")
        provenance = Provenance()
        provenance.record(gamma(program, frozenset(), interp("p.")).firings)
        clone = provenance.copy()
        provenance.clear()
        assert len(clone) == 1

    def test_updates_sorted(self):
        program = parse_program("p -> +b. p -> +a.")
        provenance = Provenance()
        provenance.record(gamma(program, frozenset(), interp("p.")).firings)
        assert [str(u) for u in provenance.updates()] == ["+a", "+b"]


class TestEngineIntegration:
    def test_result_carries_final_epoch_provenance(self):
        from repro.core.engine import park

        result = park("@name(r1) p -> +q.", "p.")
        assert result.provenance is not None
        assert len(result.provenance.derivers(insert(atom("q")))) == 1

    def test_provenance_cleared_on_restart(self, p1):
        from repro.core.engine import park

        program, database = p1
        result = park(program, database)
        # r3 (+a) fired in epoch 1 but was blocked before epoch 2: the final
        # provenance must not remember it.
        assert result.provenance.derivers(insert(atom("a"))) == frozenset()
