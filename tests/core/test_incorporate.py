"""Tests for the incorp operator."""

import pytest

from repro.core.incorporate import incorp, incorp_atoms
from repro.core.interpretation import IInterpretation
from repro.errors import EngineError
from repro.lang.atoms import atom
from repro.lang.updates import delete, insert
from repro.storage.database import Database


def interp(unmarked="", plus=(), minus=()):
    text = unmarked.strip()
    if text and not text.endswith("."):
        text += "."
    i = IInterpretation.from_database(Database.from_text(text))
    i.add_updates([insert(a) for a in plus])
    i.add_updates([delete(a) for a in minus])
    return i


class TestIncorp:
    def test_inserts_applied(self):
        result = incorp(interp("p", plus=[atom("q")]))
        assert result == Database.from_text("p. q.")

    def test_deletes_applied(self):
        result = incorp(interp("p. q.", minus=[atom("q")]))
        assert result == Database.from_text("p.")

    def test_insert_of_present_atom_noop(self):
        result = incorp(interp("p", plus=[atom("p")]))
        assert result == Database.from_text("p.")

    def test_delete_of_absent_atom_noop(self):
        result = incorp(interp("p", minus=[atom("z")]))
        assert result == Database.from_text("p.")

    def test_empty_interpretation(self):
        assert incorp(interp("")) == Database()

    def test_input_not_modified(self):
        i = interp("p", minus=[atom("p")])
        incorp(i)
        assert i.has_unmarked(atom("p"))

    def test_inconsistent_rejected_by_default(self):
        i = interp("p", plus=[atom("a")], minus=[atom("a")])
        with pytest.raises(EngineError, match="inconsistent"):
            incorp(i)

    def test_non_strict_applies_delete_last(self):
        i = interp("p", plus=[atom("a")], minus=[atom("a")])
        result = incorp(i, strict=False)
        assert atom("a") not in result

    def test_incorp_atoms(self):
        assert incorp_atoms(interp("p", plus=[atom("q")])) == frozenset(
            {atom("p"), atom("q")}
        )

    def test_paper_formula_equivalence(self):
        # incorp(I) = (I∅ ∪ {a | +a}) - {a | -a}  =  (I∅ - {a | -a}) ∪ {a | +a}
        i = interp("p. q. r.", plus=[atom("x"), atom("q")], minus=[atom("r")])
        unmarked, plus, minus = i.freeze()
        left = (set(unmarked) | set(plus)) - set(minus)
        right = (set(unmarked) - set(minus)) | set(plus)
        assert incorp_atoms(i) == frozenset(left) == frozenset(right)
