"""Tests for the immediate consequence operator Γ."""

import pytest

from repro.core.consequence import compute_firings, gamma, gamma_fixpoint
from repro.core.groundings import grounding
from repro.core.interpretation import IInterpretation
from repro.errors import NonTerminationError
from repro.lang import parse_program, substitution
from repro.lang.atoms import atom
from repro.lang.updates import delete, insert
from repro.storage.database import Database


def interp(text):
    return IInterpretation.from_database(Database.from_text(text))


class TestFirings:
    def test_firings_map_heads_to_instances(self):
        program = parse_program("@name(r1) p(X) -> +q(X).")
        firings = compute_firings(program, interp("p(a). p(b)."))
        assert set(map(str, firings)) == {"+q(a)", "+q(b)"}
        (instances,) = [v for k, v in firings.items() if str(k) == "+q(a)"]
        assert instances == frozenset({grounding(program[0], substitution(X="a"))})

    def test_blocked_instances_skipped(self):
        program = parse_program("@name(r1) p(X) -> +q(X).")
        blocked = {grounding(program[0], substitution(X="a"))}
        firings = compute_firings(program, interp("p(a). p(b)."), blocked)
        assert set(map(str, firings)) == {"+q(b)"}

    def test_multiple_rules_same_head_merge(self):
        program = parse_program("""
        @name(r1) p -> +q.
        @name(r2) s -> +q.
        """)
        firings = compute_firings(program, interp("p. s."))
        (instances,) = firings.values()
        assert len(instances) == 2


class TestGammaStep:
    def test_one_round_collects_heads(self):
        program = parse_program("p -> +q. p -> -a.")
        result = gamma(program, frozenset(), interp("p."))
        assert [str(u) for u in result.new_updates] == ["+q", "-a"]
        assert result.is_consistent
        assert not result.reached_fixpoint

    def test_gamma_is_one_step_not_closure(self):
        # q is derived from p this round; r needs q and must wait a round.
        program = parse_program("p -> +q. q -> +r.")
        result = gamma(program, frozenset(), interp("p."))
        assert [str(u) for u in result.new_updates] == ["+q"]

    def test_apply_does_not_mutate_input(self):
        program = parse_program("p -> +q.")
        i = interp("p.")
        result = gamma(program, frozenset(), i)
        new = result.apply()
        assert i.marked_count() == 0
        assert new.has_plus(atom("q"))

    def test_inconsistency_detected_same_round(self):
        program = parse_program("p -> +a. p -> -a.")
        result = gamma(program, frozenset(), interp("p."))
        assert not result.is_consistent
        assert result.conflict_atoms == [atom("a")]

    def test_inconsistency_with_established_mark(self):
        program = parse_program("p -> +a.")
        i = interp("p.")
        i.add_update(delete(atom("a")))
        result = gamma(program, frozenset(), i)
        assert result.conflict_atoms == [atom("a")]

    def test_refiring_existing_update_not_new(self):
        program = parse_program("p -> +q.")
        i = interp("p.")
        i.add_update(insert(atom("q")))
        result = gamma(program, frozenset(), i)
        assert result.reached_fixpoint

    def test_groundings_for(self):
        program = parse_program("@name(r1) p -> +q.")
        result = gamma(program, frozenset(), interp("p."))
        assert len(result.groundings_for(insert(atom("q")))) == 1
        assert result.groundings_for(insert(atom("zzz"))) == frozenset()


class TestGammaFixpoint:
    def test_chain_reaches_fixpoint(self):
        program = parse_program("p -> +q. q -> +r. r -> +s.")
        result = gamma_fixpoint(program, frozenset(), interp("p."))
        assert result.reached_fixpoint
        assert result.interpretation.has_plus(atom("s"))

    def test_stops_on_inconsistency(self):
        program = parse_program("p -> +q. q -> -p2. q -> +p2.")
        result = gamma_fixpoint(program, frozenset(), interp("p."))
        assert not result.is_consistent

    def test_round_budget(self):
        program = parse_program("p -> +q. q -> +r. r -> +s.")
        with pytest.raises(NonTerminationError):
            gamma_fixpoint(program, frozenset(), interp("p."), max_rounds=2)

    def test_monotone_growth(self):
        # Γ is inflationary: I ⊆ Γ(I).
        program = parse_program("p -> +q. q -> +r.")
        i = interp("p.")
        result = gamma(program, frozenset(), i)
        assert i.issubset(result.apply())
