"""Tests for the naive, semi-naive, and incremental Γ evaluation strategies."""

import pytest

from repro.core.engine import ParkEngine, park
from repro.core.evaluation import (
    IncrementalEvaluation,
    NaiveEvaluation,
    SemiNaiveEvaluation,
    _is_epoch_monotone,
    _is_monotone,
    make_evaluation,
)
from repro.core.interpretation import IInterpretation
from repro.lang import parse_program
from repro.storage.database import Database
from repro.workloads import (
    conflict_cascade,
    paper_example,
    relational_reachability,
    transitive_closure,
)


class TestClassification:
    def test_positive_rule_is_monotone(self):
        (rule,) = parse_program("p(X), q(X) -> +r(X).")
        assert _is_monotone(rule)

    def test_bodyless_rule_is_monotone(self):
        (rule,) = parse_program("-> +q(b).")
        assert _is_monotone(rule)

    def test_negation_is_volatile(self):
        (rule,) = parse_program("p(X), not q(X) -> +r(X).")
        assert not _is_monotone(rule)

    def test_event_is_volatile(self):
        (rule,) = parse_program("+p(X) -> +r(X).")
        assert not _is_monotone(rule)

    def test_deleting_head_can_still_be_monotone(self):
        # Monotonicity is about the *body*; a delete head is fine.
        (rule,) = parse_program("p(X) -> -r(X).")
        assert _is_monotone(rule)

    def test_event_rule_is_epoch_monotone(self):
        # I+/I- grow inflationarily within an epoch, so event validity
        # only switches off→on — the wider fragment admits it.
        (rule,) = parse_program("+p(X) -> +r(X).")
        assert _is_epoch_monotone(rule)

    def test_delete_event_is_epoch_monotone(self):
        (rule,) = parse_program("-p(X), q(X) -> +r(X).")
        assert _is_epoch_monotone(rule)

    def test_negation_is_not_epoch_monotone(self):
        (rule,) = parse_program("p(X), not q(X) -> +r(X).")
        assert not _is_epoch_monotone(rule)

    def test_positive_rule_is_epoch_monotone(self):
        (rule,) = parse_program("p(X), q(X) -> +r(X).")
        assert _is_epoch_monotone(rule)


class TestStrategyFactory:
    def test_known_names(self):
        program = parse_program("p -> +q.")
        assert isinstance(
            make_evaluation("naive", program, frozenset()), NaiveEvaluation
        )
        assert isinstance(
            make_evaluation("seminaive", program, frozenset()), SemiNaiveEvaluation
        )
        assert isinstance(
            make_evaluation("incremental", program, frozenset()),
            IncrementalEvaluation,
        )

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown evaluation"):
            make_evaluation("psychic", parse_program(""), frozenset())

    def test_engine_validates_option(self):
        with pytest.raises(ValueError):
            ParkEngine(evaluation="psychic")


class TestRoundEquivalence:
    """Round by round, all strategies produce identical firings."""

    PROGRAM = parse_program("""
    edge(X, Y) -> +tc(X, Y).
    tc(X, Z), edge(Z, Y) -> +tc(X, Y).
    tc(X, Y), not edge(X, Y) -> +derived(X, Y).
    """)

    def test_firings_match_each_round(self):
        from repro.core.consequence import GammaResult

        database = Database.from_text("edge(a, b). edge(b, c). edge(c, d).")
        interpretation = IInterpretation.from_database(database)
        naive = make_evaluation("naive", self.PROGRAM, frozenset())
        others = [
            make_evaluation(name, self.PROGRAM, frozenset())
            for name in ("seminaive", "incremental")
        ]

        delta = None
        for _ in range(10):
            naive_firings = naive.compute(interpretation, delta)
            for other in others:
                other_firings = other.compute(interpretation, delta)
                assert naive_firings == other_firings, other.name
                assert other.last_firing_count == naive.last_firing_count
            result = GammaResult(interpretation, naive_firings)
            if result.reached_fixpoint:
                break
            delta = result.new_updates
            interpretation = result.apply()
        else:
            pytest.fail("no fixpoint in 10 rounds")

    def test_event_rules_match_each_round(self):
        from repro.core.consequence import GammaResult

        # Event literals exercise the widened epoch-monotone fragment:
        # the incremental strategy matches them via delta variants.
        program = parse_program("""
        edge(X, Y) -> +hop(X, Y).
        +hop(X, Z), edge(Z, Y) -> +hop(X, Y).
        +hop(X, Y), not blocked(X) -> +audit(X, Y).
        """)
        database = Database.from_text(
            "edge(a, b). edge(b, c). edge(c, d). blocked(b)."
        )
        interpretation = IInterpretation.from_database(database)
        evaluators = {
            name: make_evaluation(name, program, frozenset())
            for name in ("naive", "seminaive", "incremental")
        }

        delta = None
        for _ in range(10):
            rounds = {
                name: evaluator.compute(interpretation, delta)
                for name, evaluator in evaluators.items()
            }
            assert rounds["seminaive"] == rounds["naive"]
            assert rounds["incremental"] == rounds["naive"]
            result = GammaResult(interpretation, rounds["naive"])
            if result.reached_fixpoint:
                break
            delta = result.new_updates
            interpretation = result.apply()
        else:
            pytest.fail("no fixpoint in 10 rounds")


class TestEndToEndEquivalence:
    WORKLOADS = [
        transitive_closure(15, seed=8),
        relational_reachability(20),
        conflict_cascade(6),
        paper_example("E2"),
        paper_example("E4"),
        paper_example("E6"),
        paper_example("E7"),
    ]

    @pytest.mark.parametrize("strategy", ["seminaive", "incremental"])
    @pytest.mark.parametrize(
        "workload", WORKLOADS, ids=lambda w: w.name
    )
    def test_same_results_and_blocked_sets(self, workload, strategy):
        naive = workload.run(evaluation="naive")
        other = workload.run(evaluation=strategy)
        assert naive.atoms == other.atoms
        assert naive.blocked == other.blocked
        assert naive.stats.rounds == other.stats.rounds
        assert naive.stats.restarts == other.stats.restarts
        assert naive.stats.firings_total == other.stats.firings_total

    @pytest.mark.parametrize("strategy", ["seminaive", "incremental"])
    def test_eca_transactions_equivalent(self, strategy):
        from repro.lang import parse_atom
        from repro.lang.updates import insert

        program = "+account(X) -> +welcome(X). welcome(X) -> +mailed(X)."
        updates = [insert(parse_atom("account(u1)"))]
        naive = park(program, "", updates=updates, evaluation="naive")
        other = park(program, "", updates=updates, evaluation=strategy)
        assert naive.atoms == other.atoms
        assert naive.stats.firings_total == other.stats.firings_total

    def test_eca_negation_mix_equivalent(self):
        from repro.lang import parse_atom
        from repro.lang.updates import delete

        # Mixes all three literal kinds: the delete event enters the
        # epoch-monotone fragment, the negation rule is dirty-scheduled.
        program = """
        -active(X), emp(X) -> +cleanup(X).
        emp(X), not active(X), cleanup(X) -> -payroll(X).
        payroll(X) -> +paid(X).
        """
        database = (
            "emp(a). emp(b). active(a). active(b). payroll(a). payroll(b)."
        )
        updates = [delete(parse_atom("active(a)"))]
        results = {
            name: park(program, database, updates=updates, evaluation=name)
            for name in ("naive", "seminaive", "incremental")
        }
        for name in ("seminaive", "incremental"):
            assert results[name].atoms == results["naive"].atoms, name
            assert results[name].blocked == results["naive"].blocked, name
            assert (
                results[name].stats.firings_total
                == results["naive"].stats.firings_total
            ), name


class TestDirtyScheduling:
    """The incremental strategy skips volatile rules whose marks stay clean."""

    def test_untouched_volatile_rule_reuses_cache(self, monkeypatch):
        from repro.core import evaluation as evaluation_module
        from repro.core.consequence import GammaResult

        program = parse_program("""
        edge(X, Y) -> +tc(X, Y).
        tc(X, Z), edge(Z, Y) -> +tc(X, Y).
        island(X), not bridge(X) -> +lonely(X).
        """)
        database = Database.from_text(
            "edge(a, b). edge(b, c). edge(c, d). island(i1). island(i2)."
        )
        interpretation = IInterpretation.from_database(database)
        evaluator = make_evaluation("incremental", program, frozenset())

        matched_rules = []
        original_collect = evaluation_module.collect_rule_firings

        def counting_collect(rule, owner, *args, **kwargs):
            matched_rules.append(owner)
            return original_collect(rule, owner, *args, **kwargs)

        monkeypatch.setattr(
            evaluation_module, "collect_rule_firings", counting_collect
        )

        (volatile_rule,) = evaluator.volatile_rules
        delta = None
        for _ in range(10):
            matched_rules.clear()
            firings = evaluator.compute(interpretation, delta)
            result = GammaResult(interpretation, firings)
            if delta is not None:
                # Later rounds only dirty tc (+ marks); the negation rule
                # reads (island, +/-) and (bridge, +/-), so it is skipped
                # but its cached firings still appear in the result.
                assert volatile_rule not in matched_rules
            assert any(
                grounding.rule == volatile_rule
                for groundings in firings.values()
                for grounding in groundings
            )
            if result.reached_fixpoint:
                break
            delta = result.new_updates
            interpretation = result.apply()
        else:
            pytest.fail("no fixpoint in 10 rounds")
