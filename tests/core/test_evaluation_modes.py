"""Tests for the naive vs. semi-naive Γ evaluation strategies."""

import pytest

from repro.core.engine import ParkEngine, park
from repro.core.evaluation import (
    NaiveEvaluation,
    SemiNaiveEvaluation,
    _is_monotone,
    make_evaluation,
)
from repro.core.interpretation import IInterpretation
from repro.lang import parse_program
from repro.storage.database import Database
from repro.workloads import (
    conflict_cascade,
    paper_example,
    relational_reachability,
    transitive_closure,
)


class TestClassification:
    def test_positive_rule_is_monotone(self):
        (rule,) = parse_program("p(X), q(X) -> +r(X).")
        assert _is_monotone(rule)

    def test_bodyless_rule_is_monotone(self):
        (rule,) = parse_program("-> +q(b).")
        assert _is_monotone(rule)

    def test_negation_is_volatile(self):
        (rule,) = parse_program("p(X), not q(X) -> +r(X).")
        assert not _is_monotone(rule)

    def test_event_is_volatile(self):
        (rule,) = parse_program("+p(X) -> +r(X).")
        assert not _is_monotone(rule)

    def test_deleting_head_can_still_be_monotone(self):
        # Monotonicity is about the *body*; a delete head is fine.
        (rule,) = parse_program("p(X) -> -r(X).")
        assert _is_monotone(rule)


class TestStrategyFactory:
    def test_known_names(self):
        program = parse_program("p -> +q.")
        assert isinstance(
            make_evaluation("naive", program, frozenset()), NaiveEvaluation
        )
        assert isinstance(
            make_evaluation("seminaive", program, frozenset()), SemiNaiveEvaluation
        )

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown evaluation"):
            make_evaluation("psychic", parse_program(""), frozenset())

    def test_engine_validates_option(self):
        with pytest.raises(ValueError):
            ParkEngine(evaluation="psychic")


class TestRoundEquivalence:
    """Round by round, both strategies produce identical firings."""

    PROGRAM = parse_program("""
    edge(X, Y) -> +tc(X, Y).
    tc(X, Z), edge(Z, Y) -> +tc(X, Y).
    tc(X, Y), not edge(X, Y) -> +derived(X, Y).
    """)

    def test_firings_match_each_round(self):
        from repro.core.consequence import GammaResult

        database = Database.from_text("edge(a, b). edge(b, c). edge(c, d).")
        interpretation = IInterpretation.from_database(database)
        naive = make_evaluation("naive", self.PROGRAM, frozenset())
        seminaive = make_evaluation("seminaive", self.PROGRAM, frozenset())

        delta = None
        for _ in range(10):
            naive_firings = naive.compute(interpretation, delta)
            semi_firings = seminaive.compute(interpretation, delta)
            assert naive_firings == semi_firings
            result = GammaResult(interpretation, naive_firings)
            if result.reached_fixpoint:
                break
            delta = result.new_updates
            interpretation = result.apply()
        else:
            pytest.fail("no fixpoint in 10 rounds")


class TestEndToEndEquivalence:
    WORKLOADS = [
        transitive_closure(15, seed=8),
        relational_reachability(20),
        conflict_cascade(6),
        paper_example("E2"),
        paper_example("E4"),
        paper_example("E6"),
        paper_example("E7"),
    ]

    @pytest.mark.parametrize(
        "workload", WORKLOADS, ids=lambda w: w.name
    )
    def test_same_results_and_blocked_sets(self, workload):
        naive = workload.run(evaluation="naive")
        seminaive = workload.run(evaluation="seminaive")
        assert naive.atoms == seminaive.atoms
        assert naive.blocked == seminaive.blocked
        assert naive.stats.rounds == seminaive.stats.rounds
        assert naive.stats.restarts == seminaive.stats.restarts

    def test_eca_transactions_equivalent(self):
        from repro.lang import parse_atom
        from repro.lang.updates import insert

        program = "+account(X) -> +welcome(X). welcome(X) -> +mailed(X)."
        updates = [insert(parse_atom("account(u1)"))]
        naive = park(program, "", updates=updates, evaluation="naive")
        seminaive = park(program, "", updates=updates, evaluation="seminaive")
        assert naive.atoms == seminaive.atoms
