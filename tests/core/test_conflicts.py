"""Tests for conflict detection — the paper's conflicts(P, I)."""

import pytest

from repro.core.conflicts import Conflict, build_conflicts, find_conflicts
from repro.core.consequence import gamma
from repro.core.groundings import grounding
from repro.core.interpretation import IInterpretation
from repro.core.provenance import Provenance
from repro.lang import parse_program, substitution
from repro.lang.atoms import atom
from repro.storage.database import Database


def interp(text):
    return IInterpretation.from_database(Database.from_text(text))


class TestConflictType:
    def test_requires_both_sides(self):
        program = parse_program("@name(r1) p -> +a.")
        g = grounding(program[0])
        with pytest.raises(ValueError, match="non-empty"):
            Conflict(atom("a"), frozenset({g}), frozenset())

    def test_requires_ground_atom(self):
        program = parse_program("@name(r1) p -> +a. @name(r2) p -> -a.")
        g1, g2 = grounding(program[0]), grounding(program[1])
        with pytest.raises(TypeError):
            Conflict(atom("a", "X"), frozenset({g1}), frozenset({g2}))

    def test_sides_and_losing_side(self):
        program = parse_program("@name(r1) p -> +a. @name(r2) p -> -a.")
        ins = frozenset({grounding(program[0])})
        dels = frozenset({grounding(program[1])})
        c = Conflict(atom("a"), ins, dels)
        assert c.side(True) is c.ins
        assert c.losing_side(True) is c.dels
        assert c.losing_side(False) is c.ins

    def test_rules(self):
        program = parse_program("@name(r1) p -> +a. @name(r2) p -> -a.")
        c = Conflict(
            atom("a"),
            frozenset({grounding(program[0])}),
            frozenset({grounding(program[1])}),
        )
        assert {r.name for r in c.rules()} == {"r1", "r2"}


class TestFindConflicts:
    def test_paper_example(self):
        # The conflicts() example from Section 4.2.
        program = parse_program("@name(r1) p(X) -> +q(X). @name(r2) p(X) -> -q(X).")
        conflicts = find_conflicts(program, interp("p(a)."))
        assert len(conflicts) == 1
        c = conflicts[0]
        assert c.atom == atom("q", "a")
        assert c.ins == frozenset({grounding(program[0], substitution(X="a"))})
        assert c.dels == frozenset({grounding(program[1], substitution(X="a"))})

    def test_looks_one_step_into_future(self):
        # Conflicting heads not yet in I still produce a conflict.
        program = parse_program("p -> +a. p -> -a.")
        i = interp("p.")
        assert i.marked_count() == 0
        assert len(find_conflicts(program, i)) == 1

    def test_no_conflicts_without_opposition(self):
        program = parse_program("p -> +a. p -> +b.")
        assert find_conflicts(program, interp("p.")) == []

    def test_maximality_collects_all_instances(self):
        program = parse_program("""
        @name(r1) p -> +a.
        @name(r2) s -> +a.
        @name(r3) p -> -a.
        """)
        (c,) = find_conflicts(program, interp("p. s."))
        assert len(c.ins) == 2
        assert len(c.dels) == 1

    def test_blocked_instances_excluded(self):
        program = parse_program("@name(r1) p -> +a. @name(r2) p -> -a.")
        blocked = {grounding(program[0])}
        assert find_conflicts(program, interp("p."), blocked=blocked) == []

    def test_sorted_by_atom(self):
        program = parse_program("""
        p -> +b. p -> -b. p -> +a. p -> -a.
        """)
        conflicts = find_conflicts(program, interp("p."))
        assert [str(c.atom) for c in conflicts] == ["a", "b"]

    def test_invalid_bodies_do_not_conflict(self):
        program = parse_program("p -> +a. q -> -a.")
        assert find_conflicts(program, interp("p.")) == []


class TestBuildConflicts:
    def test_from_gamma_result(self):
        program = parse_program("@name(r1) p -> +a. @name(r2) p -> -a.")
        result = gamma(program, frozenset(), interp("p."))
        conflicts = build_conflicts(result, frozenset(), Provenance())
        assert len(conflicts) == 1

    def test_stale_side_completed_from_provenance(self):
        # -a entered I in an earlier round via r1 (whose body was 'not b');
        # later +b defeats r1, then r3 derives +a: the current firings have
        # no valid del side, so provenance must supply r1.
        program = parse_program("""
        @name(r0) seed -> +c.
        @name(r1) not b -> -a.
        @name(r2) c -> +b.
        @name(r3) b -> +a.
        """)
        i = interp("seed.")
        provenance = Provenance()
        blocked = frozenset()
        for _ in range(10):
            result = gamma(program, blocked, i)
            if not result.is_consistent:
                break
            provenance.record(result.firings)
            i = result.apply()
        assert not result.is_consistent
        conflicts = build_conflicts(result, blocked, provenance)
        assert len(conflicts) == 1
        c = conflicts[0]
        assert {g.rule.name for g in c.ins} == {"r3"}
        assert {g.rule.name for g in c.dels} == {"r1"}

    def test_unexplained_mark_raises(self):
        # Hand-built interpretation: -a present but never derived.
        from repro.errors import EngineError
        from repro.lang.updates import delete

        program = parse_program("p -> +a.")
        i = interp("p.")
        i.add_update(delete(atom("a")))
        result = gamma(program, frozenset(), i)
        with pytest.raises(EngineError, match="no deriving instances"):
            build_conflicts(result, frozenset(), Provenance())
