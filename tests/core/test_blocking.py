"""Tests for blocking: decisions -> blocked rule instances."""

import pytest

from repro.core.blocking import BlockingMode, blocked_set, resolve_conflicts
from repro.core.conflicts import find_conflicts
from repro.core.groundings import grounding
from repro.core.interpretation import IInterpretation
from repro.errors import PolicyError
from repro.lang import parse_program
from repro.policies.base import Decision
from repro.policies.composite import ConstantPolicy
from repro.policies.inertia import InertiaPolicy
from repro.storage.database import Database

PROGRAM = parse_program("""
@name(i1) p -> +a.
@name(d1) p -> -a.
@name(i2) p -> +b.
@name(d2) p -> -b.
""")


def setup():
    database = Database.from_text("p.")
    interpretation = IInterpretation.from_database(database)
    conflicts = find_conflicts(PROGRAM, interpretation)
    return database, interpretation, conflicts


class TestResolveConflicts:
    def test_all_mode_resolves_everything(self):
        database, interpretation, conflicts = setup()
        additions, decisions = resolve_conflicts(
            conflicts, InertiaPolicy(), database, PROGRAM, interpretation,
            blocked=frozenset(), restarts=0, mode=BlockingMode.ALL,
        )
        assert len(decisions) == 2
        # inertia: a,b absent from D -> delete wins -> insert sides blocked
        assert {g.rule.name for g in additions} == {"i1", "i2"}

    def test_minimal_mode_resolves_first_only(self):
        database, interpretation, conflicts = setup()
        additions, decisions = resolve_conflicts(
            conflicts, InertiaPolicy(), database, PROGRAM, interpretation,
            blocked=frozenset(), restarts=0, mode=BlockingMode.MINIMAL,
        )
        assert len(decisions) == 1
        assert decisions[0][0].atom.predicate == "a"  # canonical order
        assert {g.rule.name for g in additions} == {"i1"}

    def test_insert_decision_blocks_delete_side(self):
        database, interpretation, conflicts = setup()
        additions, _ = resolve_conflicts(
            conflicts, ConstantPolicy(Decision.INSERT), database, PROGRAM,
            interpretation, blocked=frozenset(), restarts=0,
        )
        assert {g.rule.name for g in additions} == {"d1", "d2"}

    def test_empty_conflicts_rejected(self):
        database, interpretation, _ = setup()
        with pytest.raises(PolicyError):
            resolve_conflicts(
                [], InertiaPolicy(), database, PROGRAM, interpretation,
                blocked=frozenset(), restarts=0,
            )

    def test_bad_policy_answer_rejected(self):
        database, interpretation, conflicts = setup()

        class Confused(InertiaPolicy):
            def select(self, context):
                return "maybe"

        with pytest.raises(PolicyError, match="expected Decision"):
            resolve_conflicts(
                conflicts, Confused(), database, PROGRAM, interpretation,
                blocked=frozenset(), restarts=0,
            )

    def test_context_passed_to_policy(self):
        database, interpretation, conflicts = setup()
        seen = []

        class Spy(InertiaPolicy):
            def select(self, context):
                seen.append(context)
                return super().select(context)

        resolve_conflicts(
            conflicts, Spy(), database, PROGRAM, interpretation,
            blocked=frozenset({"marker"}), restarts=3,
        )
        assert all(ctx.database is database for ctx in seen)
        assert all(ctx.program is PROGRAM for ctx in seen)
        assert all(ctx.restarts == 3 for ctx in seen)
        assert all("marker" in ctx.blocked for ctx in seen)


class TestBlockedSetFunction:
    def test_paper_definition(self):
        # blocked(D, P, I, SELECT) on the Section 4.2 mini example.
        program = parse_program("@name(r1) p(X) -> +q(X). @name(r2) p(X) -> -q(X).")
        database = Database.from_text("p(a).")
        interpretation = IInterpretation.from_database(database)
        blocked = blocked_set(
            database, program, interpretation, ConstantPolicy(Decision.INSERT)
        )
        assert {g.rule.name for g in blocked} == {"r2"}

    def test_no_conflicts_empty(self):
        program = parse_program("p -> +a.")
        database = Database.from_text("p.")
        interpretation = IInterpretation.from_database(database)
        assert blocked_set(database, program, interpretation, InertiaPolicy()) == frozenset()
