"""Failure injection: the engine must fail cleanly, never corrupt inputs.

A policy or listener that raises mid-run aborts the computation with the
original exception; the input database, the program, and the engine
object must remain intact and reusable.  The active-database facade must
leave its state untouched when a commit fails.
"""

import pytest

from repro.active import ActiveDatabase
from repro.core.engine import EngineListener, ParkEngine, park
from repro.errors import PolicyError
from repro.lang import parse_program
from repro.lang.atoms import atom
from repro.policies.base import Decision
from repro.policies.inertia import InertiaPolicy
from repro.storage.database import Database

CONFLICT = """
@name(r1) p -> +a.
@name(r2) p -> -a.
"""


class ExplodingPolicy(InertiaPolicy):
    name = "exploding"

    def select(self, context):
        raise RuntimeError("policy blew up")


class FlakyPolicy(InertiaPolicy):
    """Raises on the first call, then behaves."""

    name = "flaky"

    def __init__(self):
        self.calls = 0

    def select(self, context):
        self.calls += 1
        if self.calls == 1:
            raise RuntimeError("transient failure")
        return super().select(context)


class TestPolicyFailures:
    def test_exception_propagates(self):
        with pytest.raises(RuntimeError, match="policy blew up"):
            park(CONFLICT, "p.", policy=ExplodingPolicy())

    def test_input_database_untouched_after_failure(self):
        database = Database.from_text("p.")
        with pytest.raises(RuntimeError):
            park(CONFLICT, database, policy=ExplodingPolicy())
        assert database == Database.from_text("p.")

    def test_engine_reusable_after_failure(self):
        engine = ParkEngine(policy=FlakyPolicy())
        with pytest.raises(RuntimeError):
            engine.run(CONFLICT, "p.")
        # same engine, second run: the flaky policy now answers
        result = engine.run(CONFLICT, "p.")
        assert result.atoms == frozenset({atom("p")})

    def test_policy_returning_none_rejected(self):
        class Indecisive(InertiaPolicy):
            def select(self, context):
                return None

        with pytest.raises(PolicyError):
            park(CONFLICT, "p.", policy=Indecisive())

    def test_policy_flipping_decisions_still_terminates(self):
        """An adversarial policy that alternates answers cannot loop the
        engine: every resolution still strictly grows the blocked set."""

        class Flipper(InertiaPolicy):
            def __init__(self):
                self.turn = 0

            def select(self, context):
                self.turn += 1
                return Decision.INSERT if self.turn % 2 else Decision.DELETE

        program = """
        @name(i1) p -> +a. @name(d1) p -> -a.
        @name(i2) a2 -> +b. @name(d2) a2 -> -b.
        """
        result = park(program, "p. a2.", policy=Flipper())
        assert result.interpretation.is_consistent()


class TestListenerFailures:
    def test_listener_exception_aborts_run(self):
        class BadListener(EngineListener):
            def on_round(self, *args):
                raise ValueError("listener broke")

        database = Database.from_text("p.")
        engine = ParkEngine(listeners=[BadListener()])
        with pytest.raises(ValueError, match="listener broke"):
            engine.run("p -> +q.", database)
        assert database == Database.from_text("p.")


class TestFacadeFailures:
    def test_failed_commit_leaves_database_intact(self):
        db = ActiveDatabase.from_text("p.")
        db.add_rules(CONFLICT)
        tx = db.transaction()
        tx.insert("seed")
        db.policy = ExplodingPolicy()
        with pytest.raises(RuntimeError):
            tx.commit()
        # data unchanged, nothing logged
        assert db.database == Database.from_text("p.")
        assert len(db.log) == 0

    def test_new_transaction_possible_after_failed_commit(self):
        db = ActiveDatabase.from_text("p.")
        db.add_rules(CONFLICT)
        tx = db.transaction()
        db.policy = ExplodingPolicy()
        with pytest.raises(RuntimeError):
            tx.commit()
        db.policy = InertiaPolicy()
        # the failed transaction is still ACTIVE (commit did not complete);
        # roll it back explicitly and move on.
        tx.rollback()
        with db.transaction() as tx2:
            tx2.insert("q")
        assert db.contains("q")
