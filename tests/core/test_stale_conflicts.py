"""The stale-conflict corner case the paper leaves open (DESIGN.md §1).

Construction: a rule derives ``-a`` early using negation (``not b``);
``+b`` arrives later, invalidating that rule's body; only then does ``+a``
become derivable.  ``Γ(I)`` is inconsistent on ``a``, but conflicts(P, I)
literally read has an *empty* del side — the deriving instance of ``-a``
is no longer valid.  The engine must resolve via provenance completion
rather than loop forever.
"""

import pytest

from repro.core.engine import park
from repro.lang import parse_database, parse_program
from repro.lang.atoms import atom
from repro.policies.base import Decision
from repro.policies.composite import ConstantPolicy
from repro.policies.inertia import InertiaPolicy

STALE = parse_program("""
@name(r0) seed -> +c.
@name(r1) not b -> -a.
@name(r2) c -> +b.
@name(r3) b -> +a.
""")


class TestStaleConflictResolution:
    def test_terminates(self):
        result = park(STALE, "seed.", max_rounds=100)
        assert result.interpretation.is_consistent()

    def test_inertia_outcome_without_a_in_d(self):
        # a ∉ D: delete wins, r3 blocked; -a's deriver r1 is invalid at the
        # fixpoint anyway, so the final state has no action on a.
        result = park(STALE, "seed.")
        assert result.atoms == frozenset(parse_database("seed. c. b."))
        assert result.blocked_rules() == ["r3"]

    def test_inertia_outcome_with_a_in_d(self):
        # a ∈ D: insert wins, the *historical* deriver r1 gets blocked, and
        # on restart -a is never derived: a survives and +a is re-derived.
        result = park(STALE, "seed. a.")
        assert atom("a") in result
        assert result.blocked_rules() == ["r1"]

    def test_forced_insert_blocks_historical_deriver(self):
        result = park(STALE, "seed.", policy=ConstantPolicy(Decision.INSERT))
        assert result.blocked_rules() == ["r1"]
        assert atom("a") in result

    def test_forced_delete_blocks_current_deriver(self):
        result = park(STALE, "seed.", policy=ConstantPolicy(Decision.DELETE))
        assert result.blocked_rules() == ["r3"]
        assert atom("a") not in result

    def test_restart_count_bounded(self):
        result = park(STALE, "seed.")
        assert result.stats.restarts == 1

    def test_policy_sees_completed_conflict(self):
        seen = {}

        class Spy(InertiaPolicy):
            def select(self, context):
                seen["ins"] = {g.rule.name for g in context.conflict.ins}
                seen["dels"] = {g.rule.name for g in context.conflict.dels}
                return super().select(context)

        park(STALE, "seed.", policy=Spy())
        assert seen == {"ins": {"r3"}, "dels": {"r1"}}
