"""Tests for the registry of the paper's worked examples."""

import pytest

from repro.workloads.paper import PAPER_EXAMPLES, paper_example, run_all


class TestRegistry:
    def test_all_nine_present(self):
        assert sorted(PAPER_EXAMPLES) == ["E%d" % i for i in range(1, 10)]

    def test_lookup_case_insensitive(self):
        assert paper_example("e4") is PAPER_EXAMPLES["E4"]

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="unknown paper example"):
            paper_example("E99")

    def test_every_example_has_expectation_and_description(self):
        for workload in PAPER_EXAMPLES.values():
            assert workload.expected is not None
            assert workload.description

    @pytest.mark.parametrize("identifier", sorted(PAPER_EXAMPLES))
    def test_each_example_checks(self, identifier):
        workload = paper_example(identifier)
        workload.check(workload.run())

    def test_run_all(self):
        results = run_all()
        assert sorted(results) == sorted(PAPER_EXAMPLES)
        # E7 and E8 differ only in policy; the registry must keep them apart
        assert results["E7"].atoms != results["E8"].atoms
