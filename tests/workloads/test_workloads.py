"""Tests for the workload generators."""

import pytest

from repro.core.blocking import BlockingMode
from repro.lang.atoms import atom
from repro.workloads import (
    ProgramGenerator,
    Workload,
    conflict_cascade,
    conflict_ladder,
    deactivation_batch,
    irreflexive_graph,
    payroll_cleanup,
    propositional_chain,
    random_edges,
    random_workload,
    relational_reachability,
    transitive_closure,
)


class TestChains:
    def test_propositional_chain_runs_to_expected(self):
        wl = propositional_chain(10)
        result = wl.run()
        wl.check(result)
        assert result.stats.rounds == 11  # 10 derivations + fixpoint check
        assert result.stats.restarts == 0

    def test_relational_reachability(self):
        wl = relational_reachability(20)
        wl.check(wl.run())

    def test_reachability_fanout(self):
        wl = relational_reachability(10, fanout=2)
        wl.check(wl.run())

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            propositional_chain(0)
        with pytest.raises(ValueError):
            relational_reachability(1)


class TestGraphs:
    def test_random_edges_deterministic(self):
        assert random_edges(10, 15, seed=3) == random_edges(10, 15, seed=3)
        assert random_edges(10, 15, seed=3) != random_edges(10, 15, seed=4)

    def test_random_edges_no_self_loops(self):
        assert all(a != b for a, b in random_edges(8, 20, seed=1))

    def test_transitive_closure_conflict_free(self):
        result = transitive_closure(12, seed=5).run()
        assert result.stats.restarts == 0
        assert result.interpretation.is_consistent()

    def test_irreflexive_graph_paper_instance(self):
        wl = irreflexive_graph()
        result = wl.run()
        wl.check(result)
        assert result.stats.restarts == 1

    def test_irreflexive_graph_scales(self):
        wl = irreflexive_graph(("a", "b", "c", "d", "e"), cut_pair=("a", "e"))
        result = wl.run()
        wl.check(result)
        # q has all non-reflexive pairs except the cut pair (both directions)
        assert result.database.count("q") == 5 * 4 - 2


class TestConflicts:
    def test_ladder_expected_state(self):
        wl = conflict_ladder(6)
        result = wl.run()
        wl.check(result)
        assert result.stats.conflicts_resolved == 6

    def test_ladder_single_restart_in_all_mode(self):
        result = conflict_ladder(6).run(blocking_mode=BlockingMode.ALL)
        assert result.stats.restarts == 1

    def test_ladder_many_restarts_in_minimal_mode(self):
        result = conflict_ladder(6).run(blocking_mode=BlockingMode.MINIMAL)
        assert result.stats.restarts == 6

    def test_cascade_restarts_scale_with_depth(self):
        shallow = conflict_cascade(4).run()
        deep = conflict_cascade(12).run()
        assert deep.stats.restarts > shallow.stats.restarts
        conflict_cascade(4).check(shallow)
        conflict_cascade(12).check(deep)

    def test_cascade_restart_bound(self):
        # Paper: at most size(P) restarts.
        wl = conflict_cascade(9)
        result = wl.run()
        assert result.stats.restarts <= len(wl.program)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            conflict_ladder(0)
        with pytest.raises(ValueError):
            conflict_cascade(1)


class TestHr:
    def test_cleanup_deletes_only_inactive(self):
        wl = payroll_cleanup(40, inactive_fraction=0.25, seed=7)
        inactive = wl.database.count("emp") - wl.database.count("active")
        result = wl.run()
        assert len(result.delta.deletes) == inactive
        assert result.database.count("audit") == inactive

    def test_deactivation_batch_triggers_severance(self):
        wl = deactivation_batch(20, 4, seed=1)
        result = wl.run()
        assert result.database.count("severance") == 4
        assert result.database.count("payroll") == 16
        assert result.database.count("audit") == 4

    def test_batch_capped_at_population(self):
        wl = deactivation_batch(3, 10)
        assert len(wl.updates) == 3


class TestRandomPrograms:
    def test_deterministic_by_seed(self):
        w1 = random_workload(5)
        w2 = random_workload(5)
        assert tuple(w1.program) == tuple(w2.program)
        assert w1.database == w2.database

    def test_different_seeds_differ(self):
        assert tuple(random_workload(1).program) != tuple(random_workload(2).program)

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_programs_are_safe_and_terminate(self, seed):
        wl = random_workload(seed, num_rules=10, num_facts=15)
        result = wl.run(max_rounds=500)
        assert result.interpretation.is_consistent()

    def test_event_programs_generate(self):
        generator = ProgramGenerator(seed=3, event_probability=0.5)
        program = generator.program(10)
        assert any(r.event_literals() for r in program)


class TestWorkloadContainer:
    def test_check_raises_on_mismatch(self):
        wl = Workload(
            name="w", program=propositional_chain(2).program,
            database=propositional_chain(2).database,
            expected=frozenset({atom("nope")}),
        )
        with pytest.raises(AssertionError, match="expected"):
            wl.check(wl.run())

    def test_run_policy_override(self):
        from repro.policies.composite import ConstantPolicy

        wl = conflict_ladder(2)
        result = wl.run(policy=ConstantPolicy("insert"))
        assert result.database.count("a0") == 1


class TestGames:
    def test_chain_game_alternates(self):
        from repro.baselines.wellfounded import well_founded
        from repro.workloads.games import chain_game

        wl = chain_game(6)
        model = well_founded(wl.program, wl.database)
        assert model.total
        # dead end n6 loses; n5 wins; ... n0 (even distance) wins iff odd chain
        wins = {str(a) for a in model.true if a.predicate == "win"}
        assert "win(n5)" in wins
        assert "win(n6)" not in wins

    def test_random_game_deterministic(self):
        from repro.workloads.games import random_game

        a = random_game(10, seed=4)
        b = random_game(10, seed=4)
        assert a.database == b.database

    def test_random_game_no_self_moves(self):
        from repro.workloads.games import random_game

        wl = random_game(8, seed=1)
        assert all(
            row[0] != row[1] for row in wl.database.relation("move").rows()
        )
