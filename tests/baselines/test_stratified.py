"""Tests for stratified (perfect-model) evaluation."""

import pytest

from repro.baselines.stratified import stratified_fixpoint
from repro.baselines.wellfounded import well_founded
from repro.core.engine import park
from repro.engine.datalog import seminaive_least_fixpoint
from repro.errors import EngineError
from repro.lang import parse_program
from repro.lang.atoms import atom
from repro.storage.database import Database


class TestEvaluation:
    def test_two_strata(self):
        result = stratified_fixpoint(
            """
            edge(Y, X) -> +reached(X).
            node(X), not reached(X) -> +isolated(X).
            """,
            "node(a). node(b). node(c). edge(a, b).",
        )
        assert atom("isolated", "a") in result
        assert atom("isolated", "c") in result
        assert atom("isolated", "b") not in result

    def test_three_strata_chain(self):
        result = stratified_fixpoint(
            """
            base -> +a0.
            not a0 -> +b0.
            not b0 -> +c0.
            """,
            "base.",
        )
        # a0 true -> b0 false -> c0 true.
        assert atom("a0") in result
        assert atom("b0") not in result
        assert atom("c0") in result

    def test_recursion_within_stratum(self):
        result = stratified_fixpoint(
            """
            edge(X, Y) -> +tc(X, Y).
            tc(X, Z), edge(Z, Y) -> +tc(X, Y).
            node(X), node(Y), not tc(X, Y) -> +unreach(X, Y).
            """,
            "node(a). node(b). node(c). edge(a, b). edge(b, c).",
        )
        assert atom("unreach", "c", "a") in result
        assert atom("unreach", "a", "c") not in result

    def test_not_stratifiable_rejected(self):
        with pytest.raises(EngineError, match="not stratifiable"):
            stratified_fixpoint("not q0 -> +p0. not p0 -> +q0.", "seed.")

    def test_rejects_active_features(self):
        with pytest.raises(EngineError):
            stratified_fixpoint("p -> -q.", "p.")
        with pytest.raises(EngineError):
            stratified_fixpoint("+p -> +q.", "p.")


class TestAgreements:
    CASES = [
        ("edge(X, Y) -> +tc(X, Y). tc(X, Z), edge(Z, Y) -> +tc(X, Y).",
         "edge(a, b). edge(b, c). edge(c, a)."),
        ("""
         edge(Y, X) -> +reached(X).
         node(X), not reached(X) -> +isolated(X).
         """,
         "node(a). node(b). edge(a, b)."),
        ("base -> +a0. not a0 -> +b0. not b0 -> +c0.", "base."),
    ]

    @pytest.mark.parametrize("program_text,facts", CASES)
    def test_matches_wellfounded_total_model(self, program_text, facts):
        program = parse_program(program_text)
        database = Database.from_text(facts)
        model = well_founded(program, database)
        assert model.total
        assert stratified_fixpoint(program, database).freeze() == model.true

    def test_positive_program_matches_least_fixpoint(self):
        program = parse_program(
            "edge(X, Y) -> +tc(X, Y). tc(X, Z), edge(Z, Y) -> +tc(X, Y)."
        )
        database = Database.from_text("edge(a, b). edge(b, c).")
        assert stratified_fixpoint(program, database) == seminaive_least_fixpoint(
            program, database
        )

    def test_park_agrees_on_stratified_programs(self):
        # PARK evaluates negation inflationarily, which on *stratified*
        # programs can still differ (PARK derives rules in parallel, not
        # stratum by stratum).  They agree when no negated predicate is
        # derived after its negation was used — e.g. the isolated-node
        # program seeded so 'reached' settles in round one.
        program = parse_program("""
        edge(Y, X) -> +reached(X).
        node(X), not reached(X), settled -> +isolated(X).
        reached(X) -> +settled.
        """)
        database = Database.from_text("node(a). node(b). edge(a, b).")
        park_result = park(program, database)
        stratified = stratified_fixpoint(program, database)
        assert park_result.database == stratified
