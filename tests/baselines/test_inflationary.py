"""Tests for the inflationary fixpoint baseline."""

import pytest

from repro.baselines.inflationary import inflationary_fixpoint, stubborn_fixpoint
from repro.core.engine import park
from repro.engine.datalog import seminaive_least_fixpoint
from repro.errors import EngineError, NonTerminationError
from repro.lang import parse_database, parse_program
from repro.lang.atoms import atom
from repro.lang.updates import insert
from repro.storage.database import Database


class TestInflationary:
    def test_positive_program_equals_least_fixpoint(self):
        program = parse_program("""
        edge(X, Y) -> +tc(X, Y).
        tc(X, Z), edge(Z, Y) -> +tc(X, Y).
        """)
        db = Database.from_text("edge(a, b). edge(b, c).")
        assert inflationary_fixpoint(program, db) == seminaive_least_fixpoint(
            program, db
        )

    def test_negation_evaluated_inflationarily(self):
        # Kolaitis-Papadimitriou: 'not q' true at round 1 fires p even if q
        # becomes true later — inflationary, not well-founded.
        program = parse_program("""
        seed -> +q.
        not q -> +p.
        """)
        result = inflationary_fixpoint(program, Database.from_text("seed."))
        # Round 1: both rules fire on the initial state (q not yet derived).
        assert atom("p") in result
        assert atom("q") in result

    def test_rejects_deletions(self):
        with pytest.raises(EngineError, match="insert-only"):
            inflationary_fixpoint(parse_program("p -> -q."), Database())

    def test_rejects_events(self):
        with pytest.raises(EngineError, match="events"):
            inflationary_fixpoint(parse_program("+p -> +q."), Database())

    def test_agrees_with_park_when_conflict_free(self):
        program = parse_program("p -> +q. q -> +r. not z -> +w.")
        db = Database.from_text("p.")
        assert inflationary_fixpoint(program, db) == park(program, db).database


class TestStubborn:
    def test_accumulates_conflicting_marks(self, p3):
        program, database = p3
        fixpoint = stubborn_fixpoint(program, database)
        assert not fixpoint.is_consistent()
        assert set(fixpoint.conflicting_atoms()) == {atom("a"), atom("q")}

    def test_paper_p2_trace_endpoint(self, p2):
        program, database = p2
        fixpoint = stubborn_fixpoint(program, database)
        # Paper: final fixpoint {p, +q, -a, +r, +a, +s}
        unmarked, plus, minus = fixpoint.freeze()
        assert unmarked == frozenset({atom("p")})
        assert plus == frozenset({atom("q"), atom("r"), atom("a"), atom("s")})
        assert minus == frozenset({atom("a")})

    def test_supports_updates(self):
        fixpoint = stubborn_fixpoint(
            parse_program("+q(X) -> +r(X)."), Database(), updates=[insert(atom("q", "b"))]
        )
        assert fixpoint.has_plus(atom("r", "b"))

    def test_round_budget(self):
        program = parse_program("p -> +a. a -> +b. b -> +c.")
        with pytest.raises(NonTerminationError):
            stubborn_fixpoint(program, Database.from_text("p."), max_rounds=1)
