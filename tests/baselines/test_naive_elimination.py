"""Tests for the Section 4.1 strawman semantics and its counterexamples."""

import pytest

from repro.baselines.naive_elimination import naive_elimination
from repro.core.engine import park
from repro.lang import parse_database
from repro.lang.atoms import atom
from repro.policies.base import Decision
from repro.policies.composite import ConstantPolicy
from repro.policies.priority import PriorityPolicy


class TestPaperCounterexamples:
    def test_p2_obsolete_consequence_kept(self, p2):
        """The strawman wrongly keeps s (derived from the cancelled +a)."""
        program, database = p2
        result = naive_elimination(program, database)
        assert result.atoms == frozenset(parse_database("p. q. r. s."))
        assert result.ambiguous_atoms == frozenset({atom("a")})

    def test_p2_park_gets_it_right(self, p2):
        program, database = p2
        assert park(program, database).atoms == frozenset(parse_database("p. q. r."))

    def test_p3_false_conflict_cancels_a(self, p3):
        """The strawman wrongly treats a as ambiguous and drops it."""
        program, database = p3
        result = naive_elimination(program, database)
        assert result.atoms == frozenset(parse_database("p."))
        assert result.ambiguous_atoms == frozenset({atom("a"), atom("q")})

    def test_p3_park_keeps_a(self, p3):
        program, database = p3
        assert park(program, database).atoms == frozenset(parse_database("p. a."))

    def test_p1_both_agree(self, p1):
        """Without derivations *from* conflicting literals, both coincide."""
        program, database = p1
        assert naive_elimination(program, database).atoms == park(
            program, database
        ).atoms


class TestMechanics:
    def test_conflict_free_program_is_just_the_fixpoint(self):
        result = naive_elimination("p -> +q. q -> +r.", "p.")
        assert result.atoms == frozenset(parse_database("p. q. r."))
        assert result.ambiguous_atoms == frozenset()

    def test_fixpoint_exposed(self, p2):
        program, database = p2
        result = naive_elimination(program, database)
        assert not result.fixpoint.is_consistent()

    def test_constant_policy_keeps_winner(self):
        result = naive_elimination(
            "p -> +a. p -> -a.", "p.", policy=ConstantPolicy(Decision.INSERT)
        )
        assert atom("a") in result.atoms

    def test_instance_needing_policy_raises(self, p2):
        program, database = p2
        with pytest.raises(AttributeError, match="no rule-instance"):
            naive_elimination(program, database, policy=PriorityPolicy())
