"""Tests for the well-founded semantics baseline."""

import pytest

from repro.baselines.wellfounded import WellFoundedModel, well_founded
from repro.engine.datalog import seminaive_least_fixpoint
from repro.errors import EngineError
from repro.lang import parse_program
from repro.lang.atoms import atom
from repro.storage.database import Database


class TestClassicalExamples:
    def test_win_move_game(self):
        model = well_founded(
            "move(X, Y), not win(Y) -> +win(X).",
            "move(a, b). move(b, a). move(b, c).",
        )
        # c is lost (no moves); b wins (move to c); a loses (only move is
        # to the winning b).
        assert model.is_true(atom("win", "b"))
        assert model.is_false(atom("win", "a"))
        assert model.is_false(atom("win", "c"))

    def test_draw_positions_unknown(self):
        model = well_founded(
            "move(X, Y), not win(Y) -> +win(X).",
            "move(a, b). move(b, a).",
        )
        assert model.is_unknown(atom("win", "a"))
        assert model.is_unknown(atom("win", "b"))
        assert not model.total

    def test_two_clause_loop_unknown(self):
        model = well_founded("not q -> +p. not p -> +q.", "seed.")
        assert model.is_unknown(atom("p"))
        assert model.is_unknown(atom("q"))

    def test_base_facts_true(self):
        model = well_founded("", "p. q(a).")
        assert model.is_true(atom("p"))
        assert model.total


class TestAgreements:
    def test_positive_program_matches_least_fixpoint(self):
        program = parse_program("""
        edge(X, Y) -> +tc(X, Y).
        tc(X, Z), edge(Z, Y) -> +tc(X, Y).
        """)
        db = Database.from_text("edge(a, b). edge(b, c). edge(c, a).")
        model = well_founded(program, db)
        assert model.total
        assert model.true == seminaive_least_fixpoint(program, db).freeze()

    def test_stratified_negation_total(self):
        program = parse_program("""
        node(X), not reached(X) -> +isolated(X).
        edge(Y, X) -> +reached(X).
        """)
        db = Database.from_text("node(a). node(b). edge(a, b).")
        model = well_founded(program, db)
        assert model.total
        assert model.is_true(atom("isolated", "a"))
        assert model.is_false(atom("isolated", "b"))


class TestValidation:
    def test_rejects_deletions(self):
        with pytest.raises(EngineError, match="insert-only"):
            well_founded("p -> -q.", "p.")

    def test_rejects_events(self):
        with pytest.raises(EngineError, match="events"):
            well_founded("+p -> +q.", "p.")

    def test_model_api(self):
        model = WellFoundedModel(
            true=frozenset({atom("t")}), unknown=frozenset({atom("u")})
        )
        assert model.is_true(atom("t"))
        assert model.is_unknown(atom("u"))
        assert model.is_false(atom("f"))
        assert not model.total
