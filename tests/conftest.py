"""Shared fixtures: the paper's example programs and databases.

Each fixture mirrors one worked example from the paper, so integration
tests can assert against the exact sets the paper prints.
"""

from __future__ import annotations

import pytest

from repro.lang import parse_atom, parse_database, parse_program
from repro.lang.updates import insert
from repro.storage import Database

# -- Section 4.1 --------------------------------------------------------------

P1_TEXT = """
@name(r1) p -> +q.
@name(r2) p -> -a.
@name(r3) q -> +a.
"""

P2_TEXT = """
@name(r1) p -> +q.
@name(r2) p -> -a.
@name(r3) q -> +a.
@name(r4) not a -> +r.
@name(r5) a -> +s.
"""

P3_TEXT = """
@name(r1) p -> +q.
@name(r2) p -> -q.
@name(r3) q -> +a.
@name(r4) q -> -a.
@name(r5) p -> +a.
"""

# -- Section 4.2 (graph example) --------------------------------------------------

GRAPH_TEXT = """
@name(r1) p(X), p(Y) -> +q(X, Y).
@name(r2) q(X, X) -> -q(X, X).
@name(r3) q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
"""

# -- Section 4.3 (ECA examples) -----------------------------------------------------

ECA1_TEXT = """
@name(r1) p(X) -> +q(X).
@name(r2) q(X) -> +r(X).
@name(r3) +r(X) -> -s(X).
"""

ECA2_TEXT = """
@name(r1) q(X, a) -> -p(X, a).
@name(r2) q(a, X) -> +r(a, X).
@name(r3) +r(X, a) -> +p(X, a).
"""

# -- Section 5 ------------------------------------------------------------------------

SEC5_TEXT = """
@name(r1) @priority(1) p -> +a.
@name(r2) @priority(2) p -> +q.
@name(r3) @priority(3) a -> +b.
@name(r4) @priority(4) a -> -q.
@name(r5) @priority(5) b -> +q.
"""

SEC5_COUNTER_TEXT = """
@name(r1) a -> +b.
@name(r2) a -> +d.
@name(r3) b -> +c.
@name(r4) b -> -d.
@name(r5) c -> -b.
"""


@pytest.fixture
def p1():
    return parse_program(P1_TEXT), Database.from_text("p.")


@pytest.fixture
def p2():
    return parse_program(P2_TEXT), Database.from_text("p.")


@pytest.fixture
def p3():
    return parse_program(P3_TEXT), Database.from_text("p.")


@pytest.fixture
def graph_example():
    return parse_program(GRAPH_TEXT), Database.from_text("p(a). p(b). p(c).")


@pytest.fixture
def eca1():
    program = parse_program(ECA1_TEXT)
    database = Database.from_text("p(a). s(a). s(b).")
    updates = (insert(parse_atom("q(b)")),)
    return program, database, updates


@pytest.fixture
def eca2():
    program = parse_program(ECA2_TEXT)
    database = Database.from_text("p(a, a). p(a, b). p(a, c).")
    updates = (insert(parse_atom("q(a, a)")),)
    return program, database, updates


@pytest.fixture
def sec5():
    return parse_program(SEC5_TEXT), Database.from_text("p.")


@pytest.fixture
def sec5_counter():
    return parse_program(SEC5_COUNTER_TEXT), Database.from_text("a.")


def atoms(text):
    """Helper: parse fact text into a frozenset of atoms."""
    return frozenset(parse_database(text))
