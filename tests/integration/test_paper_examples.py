"""Golden tests: every worked example in the paper, end to end.

Experiment ids (E1-E9) follow the index in DESIGN.md / EXPERIMENTS.md.
Where the paper prints intermediate interpretations, the recorded trace is
compared against those exact sets.
"""

import pytest

from tests.conftest import atoms

from repro.analysis.render import trace_interpretation_strings
from repro.analysis.trace import TraceRecorder
from repro.core.engine import ParkEngine, park
from repro.policies.base import Decision, SelectPolicy
from repro.policies.inertia import InertiaPolicy
from repro.policies.priority import PriorityPolicy


def run_traced(program, database, updates=None, policy=None):
    recorder = TraceRecorder()
    engine = ParkEngine(policy=policy, listeners=[recorder])
    result = engine.run(program, database, updates=updates)
    return result, recorder


class TestE1_P1:
    """Section 4.1, program P1 on D = {p}: result {p, q}."""

    def test_final_state(self, p1):
        program, database = p1
        result = park(program, database)
        assert result.atoms == atoms("p. q.")

    def test_conflict_on_a_resolved_by_inertia(self, p1):
        program, database = p1
        result, recorder = run_traced(*p1)
        (conflict_event,) = recorder.conflicts()
        ((conflict, decision),) = conflict_event.decisions
        assert str(conflict.atom) == "a"
        assert decision is Decision.DELETE  # a absent from D
        assert result.blocked_rules() == ["r3"]

    def test_a_status_unchanged(self, p1):
        program, database = p1
        result = park(program, database)
        assert atoms("a.") & result.atoms == frozenset()


class TestE2_P2:
    """Section 4.1, program P2: r stays (valid reasons), s goes (obsolete)."""

    def test_final_state(self, p2):
        result = park(*p2)
        assert result.atoms == atoms("p. q. r.")

    def test_s_not_derived_after_restart(self, p2):
        result = park(*p2)
        assert "s" not in {a.predicate for a in result.atoms}

    def test_r_survives_because_not_a_is_really_true(self, p2):
        result = park(*p2)
        assert atoms("r.") <= result.atoms

    def test_strawman_disagrees(self, p2):
        from repro.baselines.naive_elimination import naive_elimination

        program, database = p2
        assert naive_elimination(program, database).atoms == atoms("p. q. r. s.")


class TestE3_P3:
    """Section 4.1, program P3: false conflict on a is avoided."""

    def test_final_state(self, p3):
        result = park(*p3)
        assert result.atoms == atoms("p. a.")

    def test_only_q_conflict_resolved(self, p3):
        result, recorder = run_traced(*p3)
        conflict_atoms = [
            str(c.atom)
            for event in recorder.conflicts()
            for c, _ in event.decisions
        ]
        assert conflict_atoms == ["q"]  # a never becomes a real conflict

    def test_r1_blocked(self, p3):
        result = park(*p3)
        assert result.blocked_rules() == ["r1"]


class TestE4_GraphExample:
    """Section 4.2 worked example with its custom SELECT."""

    class PaperSelect(SelectPolicy):
        name = "sec42"

        def select(self, context):
            x, y = (str(t) for t in context.conflict.atom.terms)
            if x == y or {x, y} == {"a", "c"}:
                return Decision.DELETE
            return Decision.INSERT

    def test_final_state(self, graph_example):
        program, database = graph_example
        result = park(program, database, policy=self.PaperSelect())
        assert result.atoms == atoms(
            "p(a). p(b). p(c). q(a, b). q(b, a). q(b, c). q(c, b)."
        )

    def test_blocked_set_shape(self, graph_example):
        program, database = graph_example
        result = park(program, database, policy=self.PaperSelect())
        # 5 r1 instances (3 reflexive + a<->c) and 3 r3 instances per kept
        # arc (4 arcs) = 17 blocked instances over rules r1 and r3.
        assert len(result.blocked) == 17
        assert result.blocked_rules() == ["r1", "r3"]

    def test_i1_matches_paper(self, graph_example):
        program, database = graph_example
        _, recorder = run_traced(program, database, policy=self.PaperSelect())
        first_round = recorder.rounds()[0]
        _, plus, minus = first_round.interpretation
        assert len(plus) == 9  # all q(x, y) pairs
        assert not minus

    def test_one_restart(self, graph_example):
        program, database = graph_example
        result = park(program, database, policy=self.PaperSelect())
        assert result.stats.restarts == 1


class TestE5_EcaExample1:
    """Section 4.3, first ECA example: trace I1-I3, no conflicts."""

    def test_final_state(self, eca1):
        program, database, updates = eca1
        result = park(program, database, updates=updates)
        assert result.atoms == atoms("p(a). q(a). q(b). r(a). r(b).")

    def test_trace_matches_paper(self, eca1):
        program, database, updates = eca1
        _, recorder = run_traced(program, database, updates=updates)
        assert trace_interpretation_strings(recorder) == [
            # I1 = {p(a), +q(a), +q(b), s(a), s(b)}
            "{p(a), +q(a), +q(b), s(a), s(b)}",
            # I2 adds +r(a), +r(b)
            "{p(a), +q(a), +q(b), +r(a), +r(b), s(a), s(b)}",
            # I3 adds -s(a), -s(b); the renderer groups each -s next to its s
            "{p(a), +q(a), +q(b), +r(a), +r(b), s(a), -s(a), s(b), -s(b)}",
        ]

    def test_no_conflicts(self, eca1):
        program, database, updates = eca1
        result = park(program, database, updates=updates)
        assert result.stats.restarts == 0


class TestE6_EcaExample2:
    """Section 4.3, second ECA example (inertia).

    Note: the paper prints PARK(D, P, U) without q(a, a), but +q(a, a) is
    the transaction's own insert and survives incorp; the paper's own
    I4/I5 sets include it.  We assert the typo-corrected result (see
    EXPERIMENTS.md).  The paper's blocked set is printed as {r1, r3}; the
    formal definition blocks only the losing side, r1.
    """

    def test_final_state(self, eca2):
        program, database, updates = eca2
        result = park(program, database, updates=updates)
        assert result.atoms == atoms(
            "p(a, a). p(a, b). p(a, c). q(a, a). r(a, a)."
        )

    def test_conflict_on_p_a_a_insert_wins(self, eca2):
        program, database, updates = eca2
        result, recorder = run_traced(program, database, updates=updates)
        (conflict_event,) = recorder.conflicts()
        ((conflict, decision),) = conflict_event.decisions
        assert str(conflict.atom) == "p(a, a)"
        assert decision is Decision.INSERT  # p(a, a) ∈ D
        assert result.blocked_rules() == ["r1"]

    def test_restart_preserves_transaction_update(self, eca2):
        program, database, updates = eca2
        result = park(program, database, updates=updates)
        assert result.stats.restarts == 1
        assert atoms("q(a, a).") <= result.atoms


class TestE7_Section5Inertia:
    """Section 5 inertia walkthrough: trace (1)-(7), result {p, a, b}."""

    def test_final_state(self, sec5):
        result = park(*sec5)
        assert result.atoms == atoms("p. a. b.")

    def test_blocked_rules(self, sec5):
        result = park(*sec5)
        assert result.blocked_rules() == ["r2", "r5"]

    def test_trace_matches_paper(self, sec5):
        _, recorder = run_traced(*sec5)
        assert trace_interpretation_strings(recorder) == [
            "{+a, p, +q}",          # (1)
            "{+a, +b, p, +q, -q}",  # (2) inconsistent -> block r2
            "{+a, p}",              # (3)
            "{+a, +b, p, -q}",      # (4)
            "{+a, +b, p, +q, -q}",  # (5) inconsistent -> block r5
            "{+a, p}",              # (6)
            "{+a, +b, p, -q}",      # (7) final fixpoint interpretation
        ]


class TestE8_Section5Priority:
    """Same program under rule priority: result {p, a, b, q}."""

    def test_final_state(self, sec5):
        program, database = sec5
        result = park(program, database, policy=PriorityPolicy())
        assert result.atoms == atoms("p. a. b. q.")

    def test_blocked_rules(self, sec5):
        program, database = sec5
        result = park(program, database, policy=PriorityPolicy())
        assert result.blocked_rules() == ["r2", "r4"]

    def test_trace_matches_paper(self, sec5):
        program, database = sec5
        _, recorder = run_traced(program, database, policy=PriorityPolicy())
        assert trace_interpretation_strings(recorder) == [
            "{+a, p, +q}",          # (1)
            "{+a, +b, p, +q, -q}",  # (2) -q wins (prio 4 > 2) -> block r2
            "{+a, p}",              # (3)
            "{+a, +b, p, -q}",      # (4)
            "{+a, +b, p, +q, -q}",  # (5) +q wins (prio 5 > 4) -> block r4
            "{+a, p}",              # (6)
            "{+a, +b, p}",          # (7)
            "{+a, +b, p, +q}",      # (8)
        ]

    def test_same_fixpoint_machinery_different_outcome(self, sec5):
        """The paper's point: SELECT is orthogonal to the fixpoint."""
        program, database = sec5
        inertia = park(program, database, policy=InertiaPolicy())
        priority = park(program, database, policy=PriorityPolicy())
        assert inertia.atoms != priority.atoms


class TestE9_CounterintuitiveInertia:
    """Section 5's second inertia example: result {a}, not {a, d}."""

    def test_final_state(self, sec5_counter):
        result = park(*sec5_counter)
        assert result.atoms == atoms("a.")

    def test_blocked_rules_match_paper(self, sec5_counter):
        # Paper: first a -> +d (r2) is blocked, then a -> +b (r1).
        result, recorder = run_traced(*sec5_counter)
        blocked_order = [
            sorted(g.rule.name for g in event.blocked_added)
            for event in recorder.conflicts()
        ]
        assert blocked_order == [["r2"], ["r1"]]

    def test_first_conflict_is_d(self, sec5_counter):
        _, recorder = run_traced(*sec5_counter)
        first = recorder.conflicts()[0]
        assert [str(c.atom) for c, _ in first.decisions] == ["d"]

    def test_second_conflict_is_b(self, sec5_counter):
        _, recorder = run_traced(*sec5_counter)
        second = recorder.conflicts()[1]
        assert [str(c.atom) for c, _ in second.decisions] == ["b"]
