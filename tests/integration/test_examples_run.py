"""Every example script must run to completion (they self-assert)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert SCRIPTS, "no example scripts found at %s" % EXAMPLES_DIR


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, (
        "example %s failed:\n%s" % (script.name, completed.stderr[-2000:])
    )
    assert completed.stdout.strip(), "example %s printed nothing" % script.name
