"""Cross-semantics agreement: PARK vs. the deductive baselines.

The paper positions PARK as a conservative extension of the inflationary
fixpoint semantics: "if no two conflicting rules are ever firable, some
fixpoint semantics may be appropriate ... It is only in the case of
conflicts that deviations become necessary."  These tests pin that down.
"""

import pytest

from repro.baselines.inflationary import inflationary_fixpoint, stubborn_fixpoint
from repro.baselines.naive_elimination import naive_elimination
from repro.baselines.wellfounded import well_founded
from repro.core.engine import park
from repro.core.incorporate import incorp
from repro.engine.datalog import naive_least_fixpoint, seminaive_least_fixpoint
from repro.lang import parse_program
from repro.storage.database import Database
from repro.workloads import (
    ProgramGenerator,
    propositional_chain,
    relational_reachability,
    transitive_closure,
)

POSITIVE_CASES = [
    (
        parse_program("""
        edge(X, Y) -> +tc(X, Y).
        tc(X, Z), edge(Z, Y) -> +tc(X, Y).
        """),
        Database.from_text("edge(a, b). edge(b, c). edge(c, a)."),
    ),
    (propositional_chain(6).program, propositional_chain(6).database),
    (relational_reachability(8).program, relational_reachability(8).database),
    (transitive_closure(10, seed=2).program, transitive_closure(10, seed=2).database),
]


@pytest.mark.parametrize("program,database", POSITIVE_CASES)
class TestPositivePrograms:
    """On positive insert-only programs, five semantics coincide."""

    def test_park_equals_least_fixpoint(self, program, database):
        assert park(program, database).database == seminaive_least_fixpoint(
            program, database
        )

    def test_park_equals_naive_datalog(self, program, database):
        assert park(program, database).database == naive_least_fixpoint(
            program, database
        )

    def test_park_equals_inflationary(self, program, database):
        assert park(program, database).database == inflationary_fixpoint(
            program, database
        )

    def test_park_equals_wellfounded_true_part(self, program, database):
        model = well_founded(program, database)
        assert model.total
        assert park(program, database).atoms == model.true


class TestInsertOnlyWithNegation:
    """Insert-only datalog¬: PARK equals the inflationary semantics
    (both evaluate negation against the growing interpretation), but may
    differ from the well-founded model — that is the known gap between the
    two deductive semantics, not a PARK artifact."""

    CASES = [
        ("seed -> +q. not q -> +p.", "seed."),
        ("a -> +b. not c -> +d. b -> +c.", "a."),
    ]

    @pytest.mark.parametrize("program_text,facts", CASES)
    def test_park_equals_inflationary(self, program_text, facts):
        program = parse_program(program_text)
        database = Database.from_text(facts)
        assert park(program, database).database == inflationary_fixpoint(
            program, database
        )

    def test_known_divergence_from_wellfounded(self):
        program = parse_program("seed -> +q. not q -> +p.")
        database = Database.from_text("seed.")
        inflationary = inflationary_fixpoint(program, database)
        model = well_founded(program, database)
        # inflationary derives p (q not yet known in round one); the
        # well-founded model makes p false.
        from repro.lang.atoms import atom

        assert atom("p") in inflationary
        assert model.is_false(atom("p"))


class TestConflictFreeActiveRules:
    """With deletes present but never conflicting, PARK is the stubborn
    fixpoint followed by incorp — no restarts, no blocked instances."""

    CASES = [
        ("emp(X), not active(X), payroll(X) -> -payroll(X).",
         "emp(a). emp(b). active(b). payroll(a). payroll(b)."),
        ("p -> +q. q -> -r. q -> +s.", "p. r."),
    ]

    @pytest.mark.parametrize("program_text,facts", CASES)
    def test_park_equals_stubborn_incorp(self, program_text, facts):
        program = parse_program(program_text)
        database = Database.from_text(facts)
        result = park(program, database)
        assert result.stats.restarts == 0
        assert result.database == incorp(stubborn_fixpoint(program, database))

    @pytest.mark.parametrize("program_text,facts", CASES)
    def test_naive_elimination_agrees_when_conflict_free(self, program_text, facts):
        program = parse_program(program_text)
        database = Database.from_text(facts)
        assert naive_elimination(program, database).atoms == park(
            program, database
        ).atoms


class TestRandomConflictFree:
    """Random insert-only programs: PARK and inflationary agree."""

    @pytest.mark.parametrize("seed", range(6))
    def test_agreement(self, seed):
        generator = ProgramGenerator(
            seed=seed, delete_head_probability=0.0, negation_probability=0.3
        )
        workload = generator.workload(8, 12)
        park_result = park(workload.program, workload.database)
        inflationary = inflationary_fixpoint(workload.program, workload.database)
        assert park_result.database == inflationary
        assert park_result.stats.restarts == 0
