"""Golden tests for the paper's printed *conflict sets* (Section 4.2).

Beyond final states and traces, the paper prints two intermediate
artifacts we can check structurally:

* the ``conflicts(P, I)`` listing for the graph example's first
  inconsistent step — per conflicting arc, exactly which rule instances
  sit on each side;
* the ``blocked(D, P, I1, SELECT)`` set that the custom policy produces
  (five r1 instances, twelve r3 instances).
"""

import pytest

from tests.conftest import GRAPH_TEXT

from repro.core.conflicts import find_conflicts
from repro.core.consequence import gamma, gamma_fixpoint
from repro.core.blocking import resolve_conflicts
from repro.core.interpretation import IInterpretation
from repro.lang import parse_atom, parse_program
from repro.storage.database import Database
from repro.workloads.paper import Section42Policy


@pytest.fixture
def after_first_round():
    """``I1``: the graph example after one Γ application (all +q arcs)."""
    program = parse_program(GRAPH_TEXT)
    database = Database.from_text("p(a). p(b). p(c).")
    interpretation = IInterpretation.from_database(database)
    result = gamma(program, frozenset(), interpretation)
    assert result.is_consistent
    return program, database, result.apply()


class TestConflictListing:
    """The paper's ``conflicts(P, I1)`` for the Section 4.2 example."""

    def test_nine_conflicts_one_per_arc(self, after_first_round):
        program, _, interpretation = after_first_round
        conflicts = find_conflicts(program, interpretation)
        assert len(conflicts) == 9
        arcs = {str(c.atom) for c in conflicts}
        assert arcs == {
            "q(%s, %s)" % (x, y) for x in "abc" for y in "abc"
        }

    def test_reflexive_arc_sides(self, after_first_round):
        """Paper: (q(a,a), {(r1,[x<-a,y<-a])}, {(r2,[x<-a]), (r3,[..z<-a]),
        (r3,[..z<-b]), (r3,[..z<-c])})."""
        program, _, interpretation = after_first_round
        conflicts = {str(c.atom): c for c in find_conflicts(program, interpretation)}
        conflict = conflicts["q(a, a)"]
        assert len(conflict.ins) == 1
        (ins_instance,) = conflict.ins
        assert ins_instance.rule.name == "r1"
        del_rules = sorted(g.rule.name for g in conflict.dels)
        assert del_rules == ["r2", "r3", "r3", "r3"]
        # the three r3 instances range z over the whole node set
        z_values = sorted(
            str(g.substitution[v])
            for g in conflict.dels
            if g.rule.name == "r3"
            for v in g.substitution
            if v.name == "Z"
        )
        assert z_values == ["a", "b", "c"]

    def test_nonreflexive_arc_sides(self, after_first_round):
        """Paper: (q(a,b), {(r1,...)}, { three r3 instances })."""
        program, _, interpretation = after_first_round
        conflicts = {str(c.atom): c for c in find_conflicts(program, interpretation)}
        conflict = conflicts["q(a, b)"]
        assert len(conflict.ins) == 1
        assert sorted(g.rule.name for g in conflict.dels) == ["r3", "r3", "r3"]

    def test_conflicts_total_maximality(self, after_first_round):
        """Every valid opposing instance appears — the triples are maximal."""
        program, _, interpretation = after_first_round
        conflicts = find_conflicts(program, interpretation)
        # total del instances: reflexive arcs carry r2 + 3×r3 = 4 each (×3),
        # non-reflexive carry 3×r3 each (×6): 12 + 18 = 30.
        assert sum(len(c.dels) for c in conflicts) == 30
        assert sum(len(c.ins) for c in conflicts) == 9


class TestBlockedSet:
    """The paper's ``blocked(D, P, I1, SELECT)`` under the custom policy."""

    def test_blocked_shape(self, after_first_round):
        program, database, interpretation = after_first_round
        conflicts = find_conflicts(program, interpretation)
        additions, decisions = resolve_conflicts(
            conflicts,
            Section42Policy(),
            database,
            program,
            interpretation,
            blocked=frozenset(),
            restarts=0,
        )
        by_rule = {}
        for grounding in additions:
            by_rule.setdefault(grounding.rule.name, set()).add(grounding)
        # five r1 instances: three reflexive + (a,c) + (c,a)
        assert len(by_rule["r1"]) == 5
        r1_arcs = {
            "%s%s" % (g.substitution[parse_var("X")], g.substitution[parse_var("Y")])
            for g in by_rule["r1"]
        }
        assert r1_arcs == {"aa", "bb", "cc", "ac", "ca"}
        # twelve r3 instances: 3 per kept arc × 4 kept arcs
        assert len(by_rule["r3"]) == 12
        # r2 instances are never blocked (they only delete reflexive arcs,
        # all of which SELECT resolves as delete)
        assert "r2" not in by_rule
        assert len(additions) == 17

    def test_after_blocking_fixpoint_is_immediate(self, after_first_round):
        """Paper: ``I2 := Γ_B(I∅)`` and ``(B, I2)`` is already the fixpoint."""
        program, database, interpretation = after_first_round
        conflicts = find_conflicts(program, interpretation)
        additions, _ = resolve_conflicts(
            conflicts, Section42Policy(), database, program, interpretation,
            blocked=frozenset(), restarts=0,
        )
        fresh = IInterpretation.from_database(database)
        result = gamma_fixpoint(program, frozenset(additions), fresh)
        assert result.is_consistent
        kept = {str(a) for a in result.interpretation.plus.atoms()}
        assert kept == {"q(a, b)", "q(b, a)", "q(b, c)", "q(c, b)"}


def parse_var(name):
    from repro.lang.terms import Variable

    return Variable(name)
