"""Theorem 4.1, verified computationally on a battery of programs.

1. ``A ≼ Θ_P(A)`` — Θ is growing;
2. ``Θ_P^ω(A)`` is a fixpoint of ``Θ_P``;
3. if ``Θ_P^ω(A) = (B', I')`` then ``I' = lfp(Γ_{P', B'})``.

Plus the complexity remarks: polynomially many steps, at most one blocked
instance set growth per restart, and the unique-result requirement.
"""

import pytest

from repro.core.bistructure import initial_bistructure
from repro.core.consequence import gamma_fixpoint
from repro.core.eca import extend_with_updates
from repro.core.interpretation import IInterpretation
from repro.core.transition import theta, theta_omega
from repro.core.provenance import Provenance
from repro.lang import parse_program
from repro.policies.inertia import InertiaPolicy
from repro.storage.database import Database
from repro.workloads import random_workload

from tests.conftest import (
    ECA1_TEXT,
    ECA2_TEXT,
    GRAPH_TEXT,
    P1_TEXT,
    P2_TEXT,
    P3_TEXT,
    SEC5_COUNTER_TEXT,
    SEC5_TEXT,
)

BATTERY = [
    (parse_program(P1_TEXT), Database.from_text("p.")),
    (parse_program(P2_TEXT), Database.from_text("p.")),
    (parse_program(P3_TEXT), Database.from_text("p.")),
    (parse_program(SEC5_TEXT), Database.from_text("p.")),
    (parse_program(SEC5_COUNTER_TEXT), Database.from_text("a.")),
    (parse_program(GRAPH_TEXT), Database.from_text("p(a). p(b).")),
]
BATTERY += [
    (wl.program, wl.database)
    for wl in (random_workload(s, num_rules=6, num_facts=8) for s in range(6))
]


@pytest.mark.parametrize("program,database", BATTERY)
class TestTheorem41:
    def test_theta_is_growing(self, program, database):
        """Part 1: A ≼ Θ(A) along the whole iteration."""
        current = initial_bistructure(database)
        policy = InertiaPolicy()
        provenance = Provenance()
        for _ in range(200):
            step = theta(program, current, policy, database, provenance=provenance)
            assert current <= step.after, "Θ not growing at some step"
            if step.kind == "fixpoint":
                return
            current = step.after
        pytest.fail("no fixpoint within 200 steps")

    def test_omega_is_fixpoint(self, program, database):
        """Part 2: Θ(Θ^ω(A)) = Θ^ω(A)."""
        fixpoint, _ = theta_omega(program, database, InertiaPolicy())
        step = theta(program, fixpoint, InertiaPolicy(), database)
        assert step.kind == "fixpoint"
        assert step.after == fixpoint

    def test_omega_interpretation_is_lfp_of_gamma(self, program, database):
        """Part 3: int(Θ^ω) = lfp(Γ_{P', B'}) (least fixpoint above D)."""
        fixpoint, _ = theta_omega(program, database, InertiaPolicy())
        blocked = fixpoint.blocked
        fresh = IInterpretation.from_database(database)
        gamma_result = gamma_fixpoint(program, blocked, fresh)
        assert gamma_result.is_consistent
        assert gamma_result.interpretation == fixpoint.interpretation

    def test_deterministic_unique_result(self, program, database):
        """Section 3's 'unambiguous semantics' requirement."""
        first, _ = theta_omega(program, database, InertiaPolicy())
        second, _ = theta_omega(program, database, InertiaPolicy())
        assert first == second

    def test_restart_bound(self, program, database):
        """Each resolve step strictly grows B; B ⊆ all groundings (finite)."""
        _, steps = theta_omega(program, database, InertiaPolicy(), collect=True)
        resolves = [s for s in steps if s.kind == "resolve"]
        sizes = [len(s.after.blocked) for s in resolves]
        assert sizes == sorted(set(sizes))  # strictly increasing


class TestEcaTheorem:
    """The same properties hold for P_U (full ECA programs)."""

    CASES = [
        (ECA1_TEXT, "p(a). s(a). s(b).", "q(b)"),
        (ECA2_TEXT, "p(a, a). p(a, b). p(a, c).", "q(a, a)"),
    ]

    @pytest.mark.parametrize("program_text,facts,update_atom", CASES)
    def test_growing_and_fixpoint(self, program_text, facts, update_atom):
        from repro.lang import parse_atom
        from repro.lang.updates import insert

        program = extend_with_updates(
            parse_program(program_text), [insert(parse_atom(update_atom))]
        )
        database = Database.from_text(facts)
        fixpoint, steps = theta_omega(
            program, database, InertiaPolicy(), collect=True
        )
        for step in steps:
            assert step.before <= step.after
        confirm = theta(program, fixpoint, InertiaPolicy(), database)
        assert confirm.kind == "fixpoint"
