"""Tests for Database: the indexed set of ground atoms."""

import pytest

from repro.errors import SchemaError
from repro.lang.atoms import Atom, atom
from repro.lang.terms import Constant
from repro.storage.database import Database


class TestMutation:
    def test_add_and_contains(self):
        db = Database()
        assert db.add(atom("p", "a"))
        assert atom("p", "a") in db
        assert atom("p", "b") not in db

    def test_add_duplicate_false(self):
        db = Database([atom("p", "a")])
        assert not db.add(atom("p", "a"))
        assert len(db) == 1

    def test_remove(self):
        db = Database([atom("p", "a")])
        assert db.remove(atom("p", "a"))
        assert not db.remove(atom("p", "a"))
        assert not db.remove(atom("unknown"))

    def test_nonground_rejected(self):
        with pytest.raises(SchemaError):
            Database().add(atom("p", "X"))

    def test_arity_conflict_rejected(self):
        db = Database([atom("p", "a")])
        with pytest.raises(SchemaError):
            db.add(atom("p", "a", "b"))

    def test_update_bulk(self):
        db = Database()
        db.update([atom("p", "a"), atom("q")])
        assert len(db) == 2


class TestConstruction:
    def test_from_text(self):
        db = Database.from_text("p(a). q(a, 2).")
        assert atom("q", "a", 2) in db

    def test_from_tuples(self):
        db = Database.from_tuples({"edge": [("a", "b"), ("b", "c")], "flag": [()]})
        assert atom("edge", "a", "b") in db
        assert Atom("flag") in db


class TestAccess:
    def setup_method(self):
        self.db = Database.from_text("p(a). p(b). q(a, b). r.")

    def test_len_and_bool(self):
        assert len(self.db) == 4
        assert self.db
        assert not Database()

    def test_atoms_sorted_by_predicate(self):
        predicates = [a.predicate for a in self.db.atoms()]
        assert predicates == sorted(predicates)

    def test_atoms_single_predicate(self):
        assert {str(a) for a in self.db.atoms("p")} == {"p(a)", "p(b)"}
        assert list(self.db.atoms("missing")) == []

    def test_predicates(self):
        assert self.db.predicates() == ["p", "q", "r"]

    def test_count(self):
        assert self.db.count("p") == 2
        assert self.db.count("missing") == 0

    def test_constants(self):
        assert {c.value for c in self.db.constants()} == {"a", "b"}

    def test_relation_access(self):
        assert self.db.relation("q").arity == 2
        assert self.db.relation("missing") is None


class TestValueSemantics:
    def test_copy_independent(self):
        db = Database.from_text("p(a).")
        clone = db.copy()
        clone.add(atom("p", "b"))
        assert len(db) == 1
        assert len(clone) == 2

    def test_copy_preserves_catalog(self):
        db = Database.from_text("p(a).")
        clone = db.copy()
        with pytest.raises(SchemaError):
            clone.add(atom("p", "a", "b"))

    def test_equality_by_contents(self):
        assert Database.from_text("p(a). q.") == Database.from_text("q. p(a).")
        assert Database.from_text("p(a).") != Database.from_text("p(b).")

    def test_equality_with_sets(self):
        assert Database.from_text("p(a).") == {atom("p", "a")}

    def test_freeze(self):
        frozen = Database.from_text("p(a).").freeze()
        assert frozen == frozenset({atom("p", "a")})

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Database())

    def test_str_sorted(self):
        assert str(Database.from_text("q. p(a).")) == "{p(a), q}"
