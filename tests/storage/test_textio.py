"""Tests for text persistence of databases and programs."""

import pytest

from repro.lang import parse_program
from repro.lang.atoms import atom
from repro.storage.database import Database
from repro.storage.textio import (
    dump_database,
    dump_program,
    load_database,
    load_program,
)


class TestDatabaseIO:
    def test_roundtrip(self, tmp_path):
        db = Database.from_text('p(a). q(a, 42). r("two words").')
        path = tmp_path / "db.park"
        dump_database(db, str(path))
        assert load_database(str(path)) == db

    def test_empty_database(self, tmp_path):
        path = tmp_path / "empty.park"
        dump_database(Database(), str(path))
        assert load_database(str(path)) == Database()

    def test_file_is_sorted_and_readable(self, tmp_path):
        db = Database.from_text("zebra. ant.")
        path = tmp_path / "db.park"
        dump_database(db, str(path))
        assert path.read_text() == "ant.\nzebra.\n"

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "db.park"
        dump_database(Database.from_text("p."), str(path))
        dump_database(Database.from_text("q."), str(path))
        assert load_database(str(path)) == Database.from_text("q.")
        assert list(tmp_path.iterdir()) == [path]  # no temp litter


class TestControlCharacterSafety:
    """Snapshots must stay one-fact-per-line for any legal constant."""

    NASTY = [
        "line\nbreak",
        "carriage\rreturn",
        "tab\tstop",
        "trailing newline\n",
        "\n",
        "mixed\n\r\t\\\"all\" of it",
    ]

    @pytest.mark.parametrize("value", NASTY)
    def test_roundtrip(self, tmp_path, value):
        db = Database([atom("note", value), atom("anchor")])
        path = tmp_path / "db.park"
        dump_database(db, str(path))
        assert load_database(str(path)) == db

    def test_dump_is_newline_safe(self, tmp_path):
        db = Database([atom("note", "a\nb"), atom("other", "c\rd")])
        path = tmp_path / "db.park"
        dump_database(db, str(path))
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 2  # one physical line per fact
        assert all(line.endswith(".") for line in lines)


class TestProgramIO:
    def test_roundtrip_with_annotations(self, tmp_path):
        program = parse_program(
            """
            @name(r1) @priority(3) p(X), not q(X) -> -r(X).
            +s(X) -> +t(X).
            -> +q(b).
            """
        )
        path = tmp_path / "rules.park"
        dump_program(program, str(path))
        assert load_program(str(path)) == program

    def test_accepts_rule_iterables(self, tmp_path):
        program = parse_program("p -> +q.")
        path = tmp_path / "rules.park"
        dump_program(list(program), str(path))
        assert load_program(str(path)) == program

    def test_empty_program(self, tmp_path):
        path = tmp_path / "rules.park"
        dump_program(parse_program(""), str(path))
        assert len(load_program(str(path))) == 0
