"""Tests for snapshots and the savepoint stack."""

import pytest

from repro.errors import TransactionError
from repro.lang.atoms import atom
from repro.storage.database import Database
from repro.storage.snapshot import SavepointStack, Snapshot


class TestSnapshot:
    def test_capture_and_restore(self):
        db = Database.from_text("p. q.")
        snap = Snapshot(db)
        db.remove(atom("p"))
        restored = snap.restore()
        assert restored == Database.from_text("p. q.")

    def test_snapshot_is_immutable_view(self):
        db = Database.from_text("p.")
        snap = Snapshot(db)
        db.add(atom("q"))
        assert atom("q") not in snap
        assert len(snap) == 1

    def test_delta_to(self):
        db = Database.from_text("p.")
        snap = Snapshot(db)
        db.add(atom("q"))
        db.remove(atom("p"))
        delta = snap.delta_to(db)
        assert atom("q") in delta.inserts
        assert atom("p") in delta.deletes

    def test_equality_and_hash(self):
        db = Database.from_text("p.")
        assert Snapshot(db) == Snapshot(db)
        assert hash(Snapshot(db)) == hash(Snapshot(db))


class TestSavepointStack:
    def setup_method(self):
        self.db = Database.from_text("p.")
        self.stack = SavepointStack(self.db)

    def test_rollback_to(self):
        self.stack.savepoint("s1")
        self.db.add(atom("q"))
        self.stack.rollback_to("s1")
        assert self.db == Database.from_text("p.")

    def test_savepoint_survives_rollback(self):
        self.stack.savepoint("s1")
        self.db.add(atom("q"))
        self.stack.rollback_to("s1")
        self.db.add(atom("r"))
        self.stack.rollback_to("s1")  # can roll back again
        assert self.db == Database.from_text("p.")

    def test_nested_savepoints_discarded_on_rollback(self):
        self.stack.savepoint("outer")
        self.db.add(atom("q"))
        self.stack.savepoint("inner")
        self.stack.rollback_to("outer")
        with pytest.raises(TransactionError):
            self.stack.rollback_to("inner")

    def test_rollback_restores_deletions(self):
        self.stack.savepoint("s1")
        self.db.remove(atom("p"))
        self.stack.rollback_to("s1")
        assert atom("p") in self.db

    def test_release(self):
        self.stack.savepoint("s1")
        self.db.add(atom("q"))
        self.stack.release("s1")
        assert atom("q") in self.db  # release doesn't restore
        with pytest.raises(TransactionError):
            self.stack.rollback_to("s1")

    def test_auto_names(self):
        name = self.stack.savepoint()
        assert name == "sp_1"
        assert self.stack.names() == ["sp_1"]

    def test_duplicate_name_rejected(self):
        self.stack.savepoint("s1")
        with pytest.raises(TransactionError):
            self.stack.savepoint("s1")

    def test_unknown_savepoint(self):
        with pytest.raises(TransactionError):
            self.stack.rollback_to("nope")
