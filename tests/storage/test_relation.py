"""Tests for Relation: tuple storage and hash indexes."""

import pytest

from repro.errors import SchemaError
from repro.storage.relation import (
    ColumnarRelation,
    Relation,
    get_storage_backend,
    make_relation,
    set_storage_backend,
)


class TestMutation:
    def test_add_and_contains(self):
        r = Relation("edge", 2)
        assert r.add(("a", "b"))
        assert ("a", "b") in r
        assert len(r) == 1

    def test_add_duplicate_returns_false(self):
        r = Relation("edge", 2, [("a", "b")])
        assert not r.add(("a", "b"))
        assert len(r) == 1

    def test_discard(self):
        r = Relation("edge", 2, [("a", "b")])
        assert r.discard(("a", "b"))
        assert not r.discard(("a", "b"))
        assert len(r) == 0

    def test_arity_enforced(self):
        r = Relation("edge", 2)
        with pytest.raises(SchemaError):
            r.add(("a",))
        with pytest.raises(SchemaError):
            r.discard(("a", "b", "c"))

    def test_rows_must_be_tuples(self):
        with pytest.raises(SchemaError):
            Relation("edge", 2).add(["a", "b"])

    def test_zero_arity(self):
        r = Relation("flag", 0)
        assert r.add(())
        assert () in r

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            Relation("bad", -1)

    def test_clear(self):
        r = Relation("edge", 2, [("a", "b"), ("b", "c")])
        r.clear()
        assert len(r) == 0


class TestCandidates:
    def setup_method(self):
        self.r = Relation(
            "edge", 2, [("a", "b"), ("a", "c"), ("b", "c"), ("c", "a")]
        )

    def test_unbound_scans_all(self):
        assert set(self.r.candidates({})) == set(self.r)

    def test_single_column(self):
        assert set(self.r.candidates({0: "a"})) == {("a", "b"), ("a", "c")}
        assert set(self.r.candidates({1: "c"})) == {("a", "c"), ("b", "c")}

    def test_both_columns(self):
        assert set(self.r.candidates({0: "a", 1: "c"})) == {("a", "c")}

    def test_missing_value_empty(self):
        assert set(self.r.candidates({0: "zzz"})) == set()

    def test_index_maintained_after_mutation(self):
        list(self.r.candidates({0: "a"}))  # build the index
        self.r.add(("a", "z"))
        assert set(self.r.candidates({0: "a"})) == {("a", "b"), ("a", "c"), ("a", "z")}
        self.r.discard(("a", "b"))
        assert set(self.r.candidates({0: "a"})) == {("a", "c"), ("a", "z")}

    def test_index_bucket_removed_when_empty(self):
        list(self.r.candidates({0: "c"}))
        self.r.discard(("c", "a"))
        assert set(self.r.candidates({0: "c"})) == set()

    def test_fully_bound_hit(self):
        assert tuple(self.r.candidates({0: "a", 1: "b"})) == (("a", "b"),)

    def test_fully_bound_miss(self):
        assert tuple(self.r.candidates({1: "z", 0: "a"})) == ()

    def test_fully_bound_builds_no_index(self):
        # Direct membership, not an index lookup: no index materialised.
        list(self.r.candidates({0: "a", 1: "b"}))
        assert not self.r._indexes

    def test_fully_bound_zero_arity(self):
        flag = Relation("flag", 0, [()])
        assert tuple(flag.candidates({})) == ((),)


class TestValueSemantics:
    def test_copy_independent(self):
        r = Relation("edge", 2, [("a", "b")])
        clone = r.copy()
        clone.add(("x", "y"))
        assert len(r) == 1
        assert len(clone) == 2

    def test_copy_drops_indexes_by_default(self):
        r = Relation("edge", 2, [("a", "b")])
        list(r.candidates({0: "a"}))
        assert not r.copy()._indexes

    def test_copy_with_indexes_carries_them_over(self):
        r = Relation("edge", 2, [("a", "b"), ("a", "c")])
        list(r.candidates({0: "a"}))  # build the column-0 index
        clone = r.copy(with_indexes=True)
        assert set(clone._indexes) == {0}
        assert set(clone.candidates({0: "a"})) == {("a", "b"), ("a", "c")}

    def test_copied_indexes_are_independent(self):
        r = Relation("edge", 2, [("a", "b")])
        list(r.candidates({0: "a"}))
        clone = r.copy(with_indexes=True)
        clone.add(("a", "z"))
        clone.discard(("a", "b"))
        assert set(clone.candidates({0: "a"})) == {("a", "z")}
        assert set(r.candidates({0: "a"})) == {("a", "b")}

    def test_row_set_is_live(self):
        r = Relation("edge", 2, [("a", "b")])
        rows = r.row_set()
        r.add(("b", "c"))
        assert rows == {("a", "b"), ("b", "c")}

    def test_equality_by_contents(self):
        r1 = Relation("edge", 2, [("a", "b")])
        r2 = Relation("edge", 2, [("a", "b")])
        assert r1 == r2
        r2.add(("b", "c"))
        assert r1 != r2

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Relation("edge", 2))

    def test_rows_snapshot_safe(self):
        r = Relation("edge", 2, [("a", "b"), ("b", "c")])
        for row in r.rows():
            r.discard(row)  # no RuntimeError from mutation during iteration
        assert len(r) == 0


class TestCompositeIndexes:
    """Multi-column hash indexes: registration, probing, maintenance."""

    def setup_method(self):
        self.r = Relation(
            "t",
            3,
            [("a", "b", "c"), ("a", "b", "d"), ("a", "x", "c"), ("b", "b", "c")],
        )

    def test_candidates_key_unbound_scans_all(self):
        assert set(self.r.candidates_key((), ())) == set(self.r)

    def test_candidates_key_single_column(self):
        assert set(self.r.candidates_key((1,), ("b",))) == {
            ("a", "b", "c"),
            ("a", "b", "d"),
            ("b", "b", "c"),
        }

    def test_candidates_key_composite(self):
        assert set(self.r.candidates_key((0, 1), ("a", "b"))) == {
            ("a", "b", "c"),
            ("a", "b", "d"),
        }
        assert set(self.r.candidates_key((0, 2), ("a", "c"))) == {
            ("a", "b", "c"),
            ("a", "x", "c"),
        }

    def test_candidates_key_composite_miss(self):
        assert tuple(self.r.candidates_key((0, 1), ("z", "z"))) == ()

    def test_candidates_key_fully_bound_is_membership(self):
        assert tuple(self.r.candidates_key((0, 1, 2), ("a", "b", "c"))) == (
            ("a", "b", "c"),
        )
        assert tuple(self.r.candidates_key((0, 1, 2), ("a", "b", "z"))) == ()
        assert not self.r._composite  # no composite index materialised

    def test_composite_probe_registers_signature(self):
        self.r.candidates_key((0, 1), ("a", "b"))
        assert (0, 1) in self.r._registered

    def test_register_index_rejects_trivial_signatures(self):
        self.r.register_index((0,))      # single column: existing index
        self.r.register_index((0, 1, 2))  # full arity: membership test
        assert not self.r._registered

    def test_composite_maintained_across_interleaved_mutation(self):
        probe = lambda: set(self.r.candidates_key((0, 1), ("a", "b")))
        assert probe() == {("a", "b", "c"), ("a", "b", "d")}
        self.r.add(("a", "b", "e"))
        assert probe() == {("a", "b", "c"), ("a", "b", "d"), ("a", "b", "e")}
        self.r.discard(("a", "b", "c"))
        self.r.discard(("a", "b", "d"))
        assert probe() == {("a", "b", "e")}
        self.r.add(("a", "b", "c"))
        assert probe() == {("a", "b", "c"), ("a", "b", "e")}

    def test_no_stale_rows_after_discard(self):
        # Regression: a discarded row must not linger in composite buckets.
        self.r.candidates_key((0, 1), ("a", "b"))  # build the index
        self.r.discard(("a", "b", "c"))
        assert ("a", "b", "c") not in set(self.r.candidates_key((0, 1), ("a", "b")))
        # ... and re-adding it must reappear exactly once.
        self.r.add(("a", "b", "c"))
        rows = list(self.r.candidates_key((0, 1), ("a", "b")))
        assert rows.count(("a", "b", "c")) == 1

    def test_clear_drops_buckets_keeps_registration(self):
        self.r.candidates_key((0, 1), ("a", "b"))
        self.r.clear()
        assert not self.r._composite
        assert (0, 1) in self.r._registered
        self.r.add(("a", "b", "z"))
        assert set(self.r.candidates_key((0, 1), ("a", "b"))) == {("a", "b", "z")}

    def test_copy_carries_registration_not_buckets(self):
        self.r.candidates_key((0, 1), ("a", "b"))
        clone = self.r.copy()
        assert (0, 1) in clone._registered
        assert not clone._composite
        assert set(clone.candidates_key((0, 1), ("a", "b"))) == {
            ("a", "b", "c"),
            ("a", "b", "d"),
        }

    def test_copy_with_indexes_carries_composite_buckets(self):
        self.r.candidates_key((0, 1), ("a", "b"))
        clone = self.r.copy(with_indexes=True)
        assert (0, 1) in clone._composite
        clone.add(("a", "b", "z"))
        clone.discard(("a", "b", "c"))
        assert set(clone.candidates_key((0, 1), ("a", "b"))) == {
            ("a", "b", "d"),
            ("a", "b", "z"),
        }
        # The original is untouched.
        assert set(self.r.candidates_key((0, 1), ("a", "b"))) == {
            ("a", "b", "c"),
            ("a", "b", "d"),
        }

    def test_registered_signature_used_by_bound_dict_candidates(self):
        # candidates() consults registered composite indexes for multi-column
        # bound patterns instead of filtering a single-column bucket.
        self.r.register_index((0, 1))
        assert set(self.r.candidates({0: "a", 1: "b"})) == {
            ("a", "b", "c"),
            ("a", "b", "d"),
        }
        assert (0, 1) in self.r._composite


class TestColumnarRelation:
    """The columnar layout's two dialects and its swap-with-last delete."""

    def setup_method(self):
        self.r = ColumnarRelation(
            "edge", 2, [("a", "b"), ("a", "c"), ("b", "c"), ("c", "a")]
        )

    def test_raw_roundtrip(self):
        assert ("a", "b") in self.r
        assert len(self.r) == 4
        assert set(self.r.rows()) == {("a", "b"), ("a", "c"), ("b", "c"), ("c", "a")}
        assert set(iter(self.r)) == set(self.r.rows())

    def test_add_duplicate_returns_false(self):
        assert not self.r.add(("a", "b"))
        assert len(self.r) == 4

    def test_mixed_value_types(self):
        r = ColumnarRelation("payroll", 2, [("joe", 10), ("ann", 20)])
        assert ("joe", 10) in r
        assert ("joe", 20) not in r
        assert set(r.rows()) == {("joe", 10), ("ann", 20)}

    def test_discard_middle_keeps_columns_dense(self):
        # Swap-with-last: deleting a non-final row moves the last row into
        # its slot; rows(), membership, and the column arrays must agree.
        rows = self.r.rows()
        victim = rows[1]
        assert self.r.discard(victim)
        assert victim not in self.r
        assert len(self.r) == 3
        assert set(self.r.rows()) == set(rows) - {victim}
        for column in range(2):
            assert len(self.r.column(column)) == 3
        # Column arrays still describe exactly the surviving rows.
        decoded = {
            (self.r._interner.value_of(self.r.column(0)[i]),
             self.r._interner.value_of(self.r.column(1)[i]))
            for i in range(3)
        }
        assert decoded == set(self.r.rows())

    def test_discard_last_row(self):
        last = self.r.rows()[-1]
        assert self.r.discard(last)
        assert set(self.r.rows()) == set(self.r.rows())
        assert len(self.r.column(0)) == 3

    def test_unseen_value_probe_does_not_grow_interner(self):
        before = len(self.r._interner)
        assert ("never-interned-value", "b") not in self.r
        assert not self.r.discard(("never-interned-value", "b"))
        assert len(self.r._interner) == before

    def test_native_dialect(self):
        native = next(iter(self.r.row_set()))
        assert all(isinstance(ident, int) for ident in native)
        assert self.r.has_native(native)
        raw = self.r.decode_row(native)
        assert raw in self.r
        constants = self.r.row_constants(native)
        assert tuple(c.value for c in constants) == raw

    def test_candidates_raw_dialect(self):
        assert set(self.r.candidates({})) == set(self.r.rows())
        assert set(self.r.candidates({0: "a"})) == {("a", "b"), ("a", "c")}
        assert set(self.r.candidates({0: "a", 1: "c"})) == {("a", "c")}
        assert set(self.r.candidates({0: "zzz"})) == set()

    def test_candidates_key_native_dialect(self):
        interner = self.r._interner
        key = (interner.intern("a"),)
        hits = set(self.r.candidates_key((0,), key))
        assert hits == {interner.encode_row(("a", "b")), interner.encode_row(("a", "c"))}

    def test_index_maintained_after_swap_delete(self):
        list(self.r.candidates({0: "a"}))  # build the column-0 index
        self.r.discard(("a", "b"))
        self.r.add(("a", "z"))
        assert set(self.r.candidates({0: "a"})) == {("a", "c"), ("a", "z")}

    def test_copy_independent_shares_interner(self):
        clone = self.r.copy()
        assert clone._interner is self.r._interner
        clone.add(("x", "y"))
        assert len(self.r) == 4
        assert len(clone) == 5

    def test_clear(self):
        self.r.clear()
        assert len(self.r) == 0
        assert all(len(self.r.column(c)) == 0 for c in range(2))
        assert self.r.add(("a", "b"))

    def test_cross_layout_equality(self):
        row = Relation("edge", 2, self.r.rows())
        assert self.r == row
        row.add(("z", "z"))
        assert self.r != row

    def test_zero_arity(self):
        flag = ColumnarRelation("flag", 0, [()])
        assert () in flag
        assert tuple(flag.candidates({})) == ((),)
        assert flag.discard(())
        assert len(flag) == 0

    def test_arity_enforced(self):
        with pytest.raises(SchemaError):
            self.r.add(("a",))

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(self.r)


class TestStorageBackendSwitch:
    def test_make_relation_follows_backend(self):
        previous = get_storage_backend()
        try:
            set_storage_backend("row")
            assert isinstance(make_relation("t", 1), Relation)
            set_storage_backend("columnar")
            assert isinstance(make_relation("t", 1), ColumnarRelation)
        finally:
            set_storage_backend(previous)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_storage_backend("paged")
