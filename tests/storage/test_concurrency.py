"""Thread-safety hammers for the intern table and the plan cache.

The parallel executor made two shared structures reachable from more
than one thread of control: the process-global
:class:`~repro.storage.catalog.InternTable` (its fast path is a
lock-free dict read, so the allocation path must publish ids last) and
:class:`~repro.engine.plancache.PlanCache` (an LRU whose bookkeeping
must not tear under concurrent ``facts_for`` calls).  These tests
hammer both from many threads and then check the invariants that the
single-threaded tests take for granted: every id round-trips, no id is
handed out twice, and the cache converges to exactly one live entry
per program.
"""

import threading

from repro.engine.plancache import PlanCache
from repro.lang import parse_program
from repro.storage.catalog import InternTable
from repro.storage.database import Database


def _hammer(nthreads, work):
    """Run *work(thread_index)* on *nthreads* threads through a barrier."""
    barrier = threading.Barrier(nthreads)
    errors = []

    def runner(index):
        try:
            barrier.wait()
            work(index)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(index,))
        for index in range(nthreads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors


class TestInternTableConcurrency:
    def test_overlapping_interns_round_trip(self):
        # Eight threads intern heavily overlapping value sets; every id
        # any thread observed must decode back to the value it interned,
        # and the table must hold each value exactly once.
        table = InternTable()
        values = ["v%d" % n for n in range(200)]
        observed = [None] * 8

        def work(index):
            # Each thread walks the values at a different stride so the
            # first-sight allocations interleave across threads.
            mine = values[index::2] + values[(index + 1) % 2 :: 3]
            observed[index] = [(value, table.intern(value)) for value in mine]

        _hammer(8, work)
        for pairs in observed:
            for value, ident in pairs:
                assert table.value_of(ident) == value
        # No double allocation: ids are dense and agree across threads.
        idents = {table.intern(value) for value in values}
        assert idents == set(range(len(values)))

    def test_snapshot_under_concurrent_growth_is_a_prefix(self):
        # snapshot_values() may race with allocation, but whatever it
        # returns must be a consistent prefix: result[i] decodes id i.
        table = InternTable()
        snapshots = []

        def work(index):
            if index == 0:
                for _ in range(50):
                    snapshots.append(table.snapshot_values())
            else:
                for n in range(300):
                    table.intern("t%d-%d" % (index, n))

        _hammer(4, work)
        for snapshot in snapshots:
            for ident, value in enumerate(snapshot):
                assert table.value_of(ident) == value


class TestPlanCacheConcurrency:
    def test_concurrent_facts_for_converges_to_one_entry(self):
        cache = PlanCache()
        program = parse_program("emp(X), not active(X) -> -emp(X).")
        database = Database.from_text("emp(joe). active(joe).")
        results = [None] * 8

        def work(index):
            results[index] = cache.facts_for(program, database)

        _hammer(8, work)
        assert len(cache) == 1
        # Later calls all hit the single surviving entry.
        settled = cache.facts_for(program, database)
        for facts in results:
            assert facts.live == settled.live
            assert facts.dead == settled.dead

    def test_concurrent_distinct_programs_respect_capacity(self):
        cache = PlanCache(capacity=4)
        programs = [
            parse_program("emp(X) -> +p%d(X)." % n) for n in range(8)
        ]
        database = Database.from_text("emp(joe).")

        def work(index):
            for program in programs[index::2]:
                cache.facts_for(program, database)

        _hammer(8, work)
        assert len(cache) <= 4
        # The cache still answers correctly for every program afterwards.
        for program in programs:
            assert cache.facts_for(program, database) is not None
