"""Tests for the schema catalog."""

import pytest

from repro.errors import SchemaError
from repro.storage.catalog import (
    Catalog,
    InternTable,
    Schema,
    global_interner,
)


class TestSchema:
    def test_basic(self):
        s = Schema("payroll", 2, ("name", "salary"))
        assert str(s) == "payroll(name, salary)"

    def test_without_columns(self):
        assert str(Schema("edge", 2)) == "edge/2"

    def test_column_count_must_match_arity(self):
        with pytest.raises(SchemaError):
            Schema("payroll", 2, ("name",))

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            Schema("bad", -1)


class TestCatalog:
    def test_declare_and_get(self):
        c = Catalog()
        s = c.declare(Schema("emp", 1))
        assert c.get("emp") is s
        assert "emp" in c

    def test_redeclare_same_arity_ok(self):
        c = Catalog()
        c.declare(Schema("emp", 1))
        c.declare(Schema("emp", 1, ("name",)))  # refine with column names
        assert c.get("emp").columns == ("name",)

    def test_redeclare_different_arity_rejected(self):
        c = Catalog()
        c.declare(Schema("emp", 1))
        with pytest.raises(SchemaError):
            c.declare(Schema("emp", 2))

    def test_ensure_autodeclares(self):
        c = Catalog()
        c.ensure("edge", 2)
        assert c.get("edge").arity == 2

    def test_ensure_checks_arity(self):
        c = Catalog()
        c.ensure("edge", 2)
        with pytest.raises(SchemaError):
            c.ensure("edge", 3)

    def test_iteration_sorted(self):
        c = Catalog([Schema("zebra", 1), Schema("ant", 2)])
        assert list(c) == ["ant", "zebra"]
        assert [s.predicate for s in c.schemas()] == ["ant", "zebra"]

    def test_copy_independent(self):
        c = Catalog([Schema("a", 1)])
        clone = c.copy()
        clone.declare(Schema("b", 2))
        assert "b" not in c
        assert len(clone) == 2

    def test_declare_type_checked(self):
        with pytest.raises(TypeError):
            Catalog().declare(("emp", 1))


class TestInternTable:
    def test_first_seen_order_and_stability(self):
        t = InternTable()
        assert t.intern("a") == 0
        assert t.intern("b") == 1
        assert t.intern("a") == 0  # idempotent
        assert len(t) == 2

    def test_id_of_and_value_of(self):
        t = InternTable()
        ident = t.intern(42)
        assert t.id_of(42) == ident
        assert t.value_of(ident) == 42
        assert t.id_of("unseen") is None

    def test_distinct_types_are_distinct_values(self):
        t = InternTable()
        assert t.intern(1) != t.intern("1")

    def test_encode_decode_roundtrip(self):
        t = InternTable()
        row = ("joe", 4200)
        assert t.decode_row(t.encode_row(row)) == row

    def test_try_encode_row_unseen_returns_none_without_growing(self):
        t = InternTable()
        t.intern("a")
        before = len(t)
        assert t.try_encode_row(("a", "unseen")) is None
        assert len(t) == before
        assert t.try_encode_row(("a",)) == (0,)

    def test_constant_of_is_shared_and_correct(self):
        t = InternTable()
        ident = t.intern("joe")
        box = t.constant_of(ident)
        assert box.value == "joe"
        assert t.constant_of(ident) is box  # memoized, not reallocated

    def test_global_interner_is_process_wide(self):
        assert global_interner() is global_interner()
