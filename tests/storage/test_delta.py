"""Tests for Delta: the consistent update-set algebra."""

import pytest

from repro.errors import StorageError
from repro.lang.atoms import atom
from repro.lang.updates import delete, insert
from repro.storage.database import Database
from repro.storage.delta import Delta, EMPTY_DELTA


class TestConstruction:
    def test_basic(self):
        d = Delta([insert(atom("p", "a")), delete(atom("q"))])
        assert atom("p", "a") in d.inserts
        assert atom("q") in d.deletes
        assert len(d) == 2

    def test_conflicting_pair_rejected(self):
        with pytest.raises(StorageError, match="inconsistent"):
            Delta([insert(atom("p")), delete(atom("p"))])

    def test_nonground_rejected(self):
        with pytest.raises(StorageError):
            Delta([insert(atom("p", "X"))])

    def test_duplicates_collapse(self):
        d = Delta([insert(atom("p")), insert(atom("p"))])
        assert len(d) == 1

    def test_empty(self):
        assert not EMPTY_DELTA
        assert len(EMPTY_DELTA) == 0


class TestDiff:
    def test_diff_databases(self):
        before = Database.from_text("p. q.")
        after = Database.from_text("q. r.")
        d = Delta.diff(before, after)
        assert d.inserts == frozenset({atom("r")})
        assert d.deletes == frozenset({atom("p")})

    def test_diff_identity_empty(self):
        db = Database.from_text("p.")
        assert not Delta.diff(db, db)

    def test_diff_accepts_plain_sets(self):
        d = Delta.diff({atom("p")}, {atom("q")})
        assert len(d) == 2


class TestApply:
    def test_apply_copy(self):
        db = Database.from_text("p. q.")
        d = Delta([delete(atom("p")), insert(atom("r"))])
        result = d.apply(db)
        assert result == Database.from_text("q. r.")
        assert db == Database.from_text("p. q.")  # original untouched

    def test_apply_in_place(self):
        db = Database.from_text("p.")
        Delta([insert(atom("q"))]).apply(db, in_place=True)
        assert atom("q") in db

    def test_noop_semantics(self):
        # Deleting an absent atom / inserting a present one: no-ops.
        db = Database.from_text("p.")
        d = Delta([insert(atom("p")), delete(atom("zzz"))])
        assert d.apply(db) == db

    def test_diff_then_apply_is_identity(self):
        before = Database.from_text("p(a). q(b).")
        after = Database.from_text("q(b). r(c). p(d).")
        assert Delta.diff(before, after).apply(before) == after


class TestAlgebra:
    def test_invert(self):
        d = Delta([insert(atom("p")), delete(atom("q"))])
        inverse = d.invert()
        assert atom("p") in inverse.deletes
        assert atom("q") in inverse.inserts

    def test_apply_then_invert_restores(self):
        db = Database.from_text("p. q.")
        d = Delta.diff(db, Database.from_text("q. r."))
        assert d.invert().apply(d.apply(db)) == db

    def test_then_later_wins(self):
        first = Delta([insert(atom("p"))])
        second = Delta([delete(atom("p")), insert(atom("q"))])
        composed = first.then(second)
        assert atom("p") in composed.deletes
        assert atom("q") in composed.inserts

    def test_then_matches_sequential_application(self):
        db = Database.from_text("x.")
        d1 = Delta([insert(atom("p")), delete(atom("x"))])
        d2 = Delta([delete(atom("p")), insert(atom("y"))])
        sequential = d2.apply(d1.apply(db))
        composed = d1.then(d2).apply(db)
        assert sequential == composed

    def test_restricted_to(self):
        d = Delta([insert(atom("p", "a")), delete(atom("q", "b"))])
        only_p = d.restricted_to({"p"})
        assert len(only_p) == 1
        assert atom("p", "a") in only_p.inserts

    def test_membership(self):
        d = Delta([insert(atom("p"))])
        assert insert(atom("p")) in d
        assert delete(atom("p")) not in d
        assert "p" not in d

    def test_updates_sorted(self):
        d = Delta([insert(atom("b")), delete(atom("a"))])
        assert [str(u) for u in d.updates()] == ["+b", "-a"]

    def test_hash_and_eq(self):
        d1 = Delta([insert(atom("p"))])
        d2 = Delta([insert(atom("p"))])
        assert d1 == d2
        assert hash(d1) == hash(d2)
