"""Unit tests for the fault-injection file shim itself."""

import pytest

from repro.testing.faults import (
    FaultyFS,
    SimulatedCrash,
    crash_points,
    record_boundaries,
)


class TestByteBudget:
    def test_writes_exactly_the_budget_then_crashes(self, tmp_path):
        path = str(tmp_path / "f")
        fs = FaultyFS(crash_after_bytes=4)
        with pytest.raises(SimulatedCrash):
            fs.append(path, b"0123456789")
        assert open(path, "rb").read() == b"0123"
        assert fs.bytes_written == 4
        assert fs.crashed

    def test_budget_spans_multiple_appends(self, tmp_path):
        path = str(tmp_path / "f")
        fs = FaultyFS(crash_after_bytes=6)
        fs.append(path, b"abcd")  # 4 bytes, under budget
        with pytest.raises(SimulatedCrash):
            fs.append(path, b"efgh")  # 2 more allowed, then crash
        assert open(path, "rb").read() == b"abcdef"

    def test_zero_remaining_budget_tears_before_any_byte(self, tmp_path):
        path = str(tmp_path / "f")
        fs = FaultyFS(crash_after_bytes=0)
        with pytest.raises(SimulatedCrash):
            fs.append(path, b"abcd")
        assert not (tmp_path / "f").exists()

    def test_crashed_fs_refuses_everything(self, tmp_path):
        path = str(tmp_path / "f")
        fs = FaultyFS(crash_after_bytes=0)
        with pytest.raises(SimulatedCrash):
            fs.append(path, b"x")
        for operation in (
            lambda: fs.append(path, b"y"),
            lambda: fs.sync(path),
            lambda: fs.sync_dir(str(tmp_path)),
            lambda: fs.truncate(path, 0),
            lambda: fs.remove(path),
        ):
            with pytest.raises(SimulatedCrash):
                operation()


class TestSyncCrashes:
    def test_crash_at_sync_barrier_keeps_written_bytes_by_default(
        self, tmp_path
    ):
        path = str(tmp_path / "f")
        fs = FaultyFS(crash_after_syncs=0)
        with pytest.raises(SimulatedCrash):
            fs.append(path, b"abcd", sync=True)
        # written but never fsynced; optimistic model keeps the bytes
        assert open(path, "rb").read() == b"abcd"

    def test_drop_unsynced_truncates_to_durable_size(self, tmp_path):
        path = str(tmp_path / "f")
        fs = FaultyFS(crash_after_syncs=1, drop_unsynced=True)
        fs.append(path, b"abcd", sync=True)  # durable
        fs.append(path, b"efgh", sync=False)  # volatile
        with pytest.raises(SimulatedCrash):
            fs.sync(path)
        assert open(path, "rb").read() == b"abcd"

    def test_counters(self, tmp_path):
        path = str(tmp_path / "f")
        fs = FaultyFS()
        fs.append(path, b"ab", sync=True)
        fs.append(path, b"cd", sync=False)
        fs.sync(path)
        fs.sync_dir(str(tmp_path))
        assert fs.bytes_written == 4
        assert fs.syncs == 2
        assert fs.dir_syncs == 1
        assert not fs.crashed


class TestStreamHelpers:
    def test_record_boundaries(self):
        assert record_boundaries(b"aa\nbbb\n") == [3, 7]
        assert record_boundaries(b"aa\nbb") == [3]
        assert record_boundaries(b"") == []

    def test_crash_points_cover_every_byte(self):
        assert list(crash_points(b"abc")) == [0, 1, 2, 3]
