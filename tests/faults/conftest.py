"""Shared history builder for the fault-injection suite.

One deterministic "nasty" commit history is reused by several tests:
random inserts/deletes over constants that exercise the journal framing
(``|``, ``;``, newlines, ``%``, quotes, backslashes) plus active rules
that cascade, so every record carries a delta that differs from its
requested update set.
"""

import random

import pytest

from repro.active import ActiveDatabase

RULES = """
@name(audit) +p(X) -> +audit(X).
@name(cascade) +q(X), p(X) -> +both(X).
@name(retract) -p(X), audit(X) -> -audit(X).
"""

BASE_FACTS = 'p(seed). q("two words").'

#: Constants chosen to break naive ``|``/``;``-joined line formats.
NASTY_VALUES = (
    "plain",
    "two words",
    "a|b",
    "x;y",
    "line\nbreak",
    "100%",
    "tab\there",
    'quo"te',
    "back\\slash",
    "semi;colon|pipe",
)


def build_history(workdir, seed=20260805, transactions=24, group=None):
    """Commit a random history; returns (snapshot, journal, states, tx_ids).

    ``states[k]`` is the database after ``k`` commits (``states[0]`` is
    the checkpointed base), so a recovery claiming to be "a prefix of the
    committed history" must equal exactly one of them.
    """
    snapshot = str(workdir / "base.park")
    journal_path = str(workdir / "commits.journal")
    db = ActiveDatabase.from_text(BASE_FACTS, journal=journal_path)
    db.add_rules(RULES)
    db.checkpoint(snapshot)
    states = [db.database.copy()]
    tx_ids = []
    rng = random.Random(seed)

    def one_commit(index):
        with db.transaction() as tx:
            for _ in range(rng.randint(1, 3)):
                value = "%s_%d" % (rng.choice(NASTY_VALUES), rng.randint(0, 4))
                predicate = rng.choice(("p", "q"))
                if rng.random() < 0.7:
                    tx.insert(predicate, value)
                else:
                    tx.delete(predicate, value)
        states.append(db.database.copy())
        tx_ids.append(tx.transaction_id)

    if group:
        with db.group_commit(group):
            for index in range(transactions):
                one_commit(index)
    else:
        for index in range(transactions):
            one_commit(index)
    return snapshot, journal_path, states, tx_ids


@pytest.fixture
def history(tmp_path):
    return build_history(tmp_path)
