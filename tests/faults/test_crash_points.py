"""The crash-point property: recovery always yields a prefix of commits.

The golden run commits a ≥20-transaction random history (nasty constants,
cascading rules) through the journal.  A crash can leave *any byte
prefix* of that journal stream behind — torn ``write(2)``, lost page
cache, or both — so the property is asserted over **every** byte offset:
recovering from the prefix must reproduce exactly ``states[k]`` where
``k`` is the number of complete records in the prefix.  Never a torn
state, never a diverged one, and appending after recovery must never
concatenate onto torn bytes.
"""

from repro.active import ActiveDatabase
from repro.active.journal import Journal
from repro.lang.atoms import atom
from repro.lang.updates import insert
from repro.storage.delta import Delta
from repro.storage.textio import load_database
from repro.testing.faults import crash_points, record_boundaries


def _complete_records(boundaries, cut):
    return sum(1 for boundary in boundaries if boundary <= cut)


def test_every_crash_point_recovers_a_prefix(history, tmp_path):
    snapshot, journal_path, states, tx_ids = history
    assert len(tx_ids) >= 20, "acceptance floor: a ≥20-transaction history"
    with open(journal_path, "rb") as handle:
        stream = handle.read()
    boundaries = record_boundaries(stream)
    assert len(boundaries) == len(tx_ids), (
        "journal framing must keep one record per line"
    )
    base = load_database(snapshot)
    torn_path = str(tmp_path / "torn.journal")
    for cut in crash_points(stream):
        with open(torn_path, "wb") as handle:
            handle.write(stream[:cut])
        journal = Journal(torn_path)
        recovered = journal.replay(base, in_place=False)
        complete = _complete_records(boundaries, cut)
        assert recovered == states[complete], (
            "crash at byte %d: recovered state is not the %d-commit prefix"
            % (cut, complete)
        )
        torn = cut != 0 and cut not in boundaries
        assert (journal.corrupt_tail is not None) == torn, (
            "crash at byte %d: torn-tail detection disagrees" % cut
        )


def test_recover_and_append_after_every_17th_crash_point(history, tmp_path):
    """Full ``ActiveDatabase.recover`` + append-after-repair, sampled.

    The state property above covers every byte; this drives the heavier
    end-to-end path (snapshot load, tail truncation, tx-id continuation,
    a fresh append) at a sample of crash points including every record
    boundary and its two torn neighbours.
    """
    snapshot, journal_path, states, tx_ids = history
    with open(journal_path, "rb") as handle:
        stream = handle.read()
    boundaries = record_boundaries(stream)
    cuts = set(range(0, len(stream) + 1, 17))
    for boundary in boundaries:
        cuts.update((boundary - 1, boundary, boundary + 1))
    cuts.add(len(stream))
    torn_path = str(tmp_path / "torn.journal")
    marker = insert(atom("recovery_marker"))
    for cut in sorted(c for c in cuts if 0 <= c <= len(stream)):
        with open(torn_path, "wb") as handle:
            handle.write(stream[:cut])
        recovered = ActiveDatabase.recover(snapshot, torn_path)
        complete = _complete_records(boundaries, cut)
        assert recovered.database == states[complete]
        expected_next = tx_ids[complete - 1] + 1 if complete else 1
        assert recovered._next_tx == expected_next
        # The torn bytes were physically truncated on recover: a new
        # record must parse back cleanly alongside the surviving prefix.
        recovered.journal.append(9999, (marker,), Delta([marker]))
        reread = Journal(torn_path)
        assert [r.transaction_id for r in reread.records()] == (
            tx_ids[:complete] + [9999]
        )
        assert reread.corrupt_tail is None


def test_group_commit_stream_is_identical_framing(tmp_path):
    """Group commit changes fsync timing, not bytes: same records result."""
    from .conftest import build_history

    plain_dir = tmp_path / "plain"
    grouped_dir = tmp_path / "grouped"
    plain_dir.mkdir()
    grouped_dir.mkdir()
    _, plain_journal, plain_states, _ = build_history(plain_dir)
    _, grouped_journal, grouped_states, _ = build_history(grouped_dir, group=5)
    with open(plain_journal, "rb") as handle:
        plain_stream = handle.read()
    with open(grouped_journal, "rb") as handle:
        grouped_stream = handle.read()
    assert plain_stream == grouped_stream
    assert plain_states[-1] == grouped_states[-1]
