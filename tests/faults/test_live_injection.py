"""Driving the real commit pipeline through the faulty file layer.

Where ``test_crash_points`` enumerates prefixes of a recorded stream,
these tests crash the *live* write path: the journal's own appends and
fsyncs run against :class:`FaultyFS`, so the write-ahead ordering, the
group-commit barriers, and the torn-tail repair are exercised exactly as
a real crash would hit them.
"""

import pytest

from repro.active import ActiveDatabase
from repro.active.journal import Journal
from repro.testing.faults import FaultyFS, SimulatedCrash, record_boundaries

from .conftest import BASE_FACTS, RULES


def _journaled_db(journal_path, fs):
    db = ActiveDatabase.from_text(
        BASE_FACTS, journal=Journal(journal_path, fs=fs)
    )
    db.add_rules(RULES)
    return db


def _commit_until_crash(db, count=30, group=None):
    """Auto-commit up to *count* inserts; returns (states, crashed)."""
    states = [db.database.copy()]
    try:
        if group:
            with db.group_commit(group):
                for index in range(count):
                    db.insert("p", "value_%d" % index)
                    states.append(db.database.copy())
        else:
            for index in range(count):
                db.insert("p", "value_%d" % index)
                states.append(db.database.copy())
    except SimulatedCrash:
        return states, True
    return states, False


class TestWriteAheadOrdering:
    def test_torn_append_leaves_live_database_unchanged(self, tmp_path):
        """The WAL ordering fix, observed through a real torn write."""
        journal_path = str(tmp_path / "commits.journal")
        snapshot = str(tmp_path / "base.park")
        fs = FaultyFS(crash_after_bytes=150)  # tears inside some record
        db = _journaled_db(journal_path, fs)
        db.checkpoint(snapshot)
        states, crashed = _commit_until_crash(db)
        assert crashed
        # journal-before-apply: the commit whose append tore must not
        # have touched the live database.
        assert db.database == states[-1]
        # ...and recovery yields exactly the fsync-acknowledged prefix.
        recovered = ActiveDatabase.recover(snapshot, journal_path)
        survivors = len(Journal(journal_path).records())
        assert recovered.database == states[survivors]

    def test_every_live_crash_point_recovers_a_prefix(self, tmp_path):
        """End-to-end byte enumeration over a short live history."""
        golden_dir = tmp_path / "golden"
        golden_dir.mkdir()
        golden_journal = str(golden_dir / "commits.journal")
        golden_snapshot = str(golden_dir / "base.park")
        golden = _journaled_db(golden_journal, FaultyFS())
        golden.checkpoint(golden_snapshot)
        golden_states, crashed = _commit_until_crash(golden, count=6)
        assert not crashed
        with open(golden_journal, "rb") as handle:
            total = len(handle.read())
        for cut in range(total + 1):
            workdir = tmp_path / ("cut_%d" % cut)
            workdir.mkdir()
            journal_path = str(workdir / "commits.journal")
            snapshot = str(workdir / "base.park")
            db = _journaled_db(journal_path, FaultyFS(crash_after_bytes=cut))
            db.checkpoint(snapshot)
            states, crashed = _commit_until_crash(db, count=6)
            assert crashed == (cut < total)
            recovered = ActiveDatabase.recover(snapshot, journal_path)
            survivors = len(recovered.journal.records())
            assert recovered.database == states[survivors], (
                "live crash after %d journal bytes diverged" % cut
            )


class TestGroupCommit:
    def test_fsyncs_are_coalesced(self, tmp_path):
        always = FaultyFS()
        db = _journaled_db(str(tmp_path / "always.journal"), always)
        _commit_until_crash(db, count=8)
        assert always.syncs == 8

        grouped = FaultyFS()
        db = _journaled_db(str(tmp_path / "grouped.journal"), grouped)
        _commit_until_crash(db, count=8, group=4)
        assert grouped.syncs == 2
        # same records hit the file either way
        assert len(Journal(str(tmp_path / "grouped.journal")).records()) == 8

    def test_group_exit_flushes_a_partial_batch(self, tmp_path):
        fs = FaultyFS()
        db = _journaled_db(str(tmp_path / "commits.journal"), fs)
        _commit_until_crash(db, count=5, group=4)
        assert fs.syncs == 2  # one full barrier + the exit flush

    def test_crash_with_dropped_unsynced_bytes_recovers_durable_prefix(
        self, tmp_path
    ):
        """The pessimistic crash model: volatile bytes vanish entirely."""
        journal_path = str(tmp_path / "commits.journal")
        snapshot = str(tmp_path / "base.park")
        fs = FaultyFS(crash_after_syncs=2, drop_unsynced=True)
        db = _journaled_db(journal_path, fs)
        db.checkpoint(snapshot)
        states, crashed = _commit_until_crash(db, count=12, group=4)
        assert crashed
        recovered = ActiveDatabase.recover(snapshot, journal_path)
        survivors = len(recovered.journal.records())
        # the durable prefix is whole records (fsync barriers sit on
        # record boundaries), and is what recovery must reproduce
        assert survivors == 8  # two barriers × group of 4
        assert recovered.database == states[survivors]
        with open(journal_path, "rb") as handle:
            stream = handle.read()
        assert len(record_boundaries(stream)) == survivors


class TestAppendFailureRegression:
    def test_oserror_from_append_leaves_database_and_log_unchanged(
        self, tmp_path
    ):
        """Satellite regression: a failing append must abort the commit."""

        class ExplodingJournal(Journal):
            def append(self, transaction_id, requested, delta):
                raise OSError(28, "No space left on device")

        db = ActiveDatabase.from_text(
            BASE_FACTS, journal=ExplodingJournal(str(tmp_path / "j"))
        )
        db.add_rules(RULES)
        before = db.database.copy()
        with pytest.raises(OSError):
            db.insert("p", "doomed")
        assert db.database == before
        assert len(db.log) == 0
