"""Experiment C2: scaling in the program size; restarts <= size(P).

Paper, Section 4.2: "the above iterative procedure is only executed at
most size(P) times ... at each step of the iteration, after conflict
resolution, at least one rule from P is eliminated."  The cascade
workload makes restarts grow linearly with program depth; the benchmark
asserts the bound and the scaling summary reports runtime vs. |P|.
"""

import pytest

from benchmarks.conftest import run_and_record

from repro.workloads import conflict_cascade, conflict_ladder, propositional_chain

DEPTHS = [4, 8, 16, 32]
WIDTHS = [4, 8, 16, 32]
CHAIN_LENGTHS = [25, 50, 100, 200]


@pytest.mark.parametrize("depth", DEPTHS)
def test_c2_cascade_restarts(benchmark, scaling, depth):
    workload = conflict_cascade(depth)
    rule_count = len(workload.program)

    def run():
        result = workload.run()
        workload.check(result)
        # the paper's bound: restarts never exceed size(P)
        assert result.stats.restarts <= rule_count
        # and for this family they grow with depth
        assert result.stats.restarts == (depth + 1) // 2
        return result

    run_and_record(benchmark, scaling, "C2 cascade(|P| rules)", rule_count, run)


@pytest.mark.parametrize("width", WIDTHS)
def test_c2_ladder_single_restart(benchmark, scaling, width):
    workload = conflict_ladder(width)

    def run():
        result = workload.run()
        workload.check(result)
        assert result.stats.restarts == 1  # ALL mode folds them into one
        assert result.stats.conflicts_resolved == width
        return result

    run_and_record(benchmark, scaling, "C2 ladder(|P|/2 conflicts)", width, run)


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_c2_conflict_free_chain(benchmark, scaling, length):
    """Control series: rounds grow with |P| but no restarts ever happen."""
    workload = propositional_chain(length)

    def run():
        result = workload.run()
        workload.check(result)
        assert result.stats.restarts == 0
        return result

    run_and_record(benchmark, scaling, "C2 chain(|P| rules)", length, run)
