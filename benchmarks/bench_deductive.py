"""Experiment A6: the deductive-semantics family on the win–move game.

The paper's Section 3 positions PARK against the deductive semantics
([6] inflationary, [4] well-founded); this bench puts the whole family
side by side on the canonical datalog¬ separator.  Reproduced shape:

* on *acyclic* games all deductive engines agree on won positions and
  the well-founded model is total;
* on *cyclic* games the well-founded semantics pays its alternating
  fixpoint (several least-model computations) while the inflationary
  semantics stays single-pass — the price of identifying drawn
  positions;
* the stratified evaluator correctly *refuses* the program (negation in
  a cycle through `win`), which is the rejection path of the
  stratification checker.
"""

import pytest

from benchmarks.conftest import run_and_record

from repro.baselines.inflationary import inflationary_fixpoint
from repro.baselines.stratified import stratified_fixpoint
from repro.baselines.wellfounded import well_founded
from repro.errors import EngineError
from repro.workloads.games import chain_game, random_game

CHAIN_SIZES = [40, 80, 160]
RANDOM_SIZES = [10, 20, 40]


@pytest.mark.parametrize("size", CHAIN_SIZES)
def test_a6_wellfounded_acyclic(benchmark, scaling, size):
    workload = chain_game(size)

    def run():
        model = well_founded(workload.program, workload.database)
        assert model.total  # acyclic: no draws
        # positions alternate: the dead end loses, its predecessor wins...
        wins = sum(1 for a in model.true if a.predicate == "win")
        assert wins == (size + 1) // 2
        return model

    run_and_record(benchmark, scaling, "A6 wf acyclic-game", size, run)


@pytest.mark.parametrize("size", RANDOM_SIZES)
def test_a6_wellfounded_cyclic(benchmark, scaling, size):
    workload = random_game(size, seed=6)

    def run():
        return well_founded(workload.program, workload.database)

    run_and_record(benchmark, scaling, "A6 wf cyclic-game", size, run)


@pytest.mark.parametrize("size", CHAIN_SIZES)
def test_a6_inflationary_acyclic(benchmark, scaling, size):
    workload = chain_game(size)

    def run():
        return inflationary_fixpoint(workload.program, workload.database)

    run_and_record(benchmark, scaling, "A6 inflationary acyclic-game", size, run)


def test_a6_stratified_rejects_the_game():
    workload = chain_game(10)
    with pytest.raises(EngineError, match="not stratifiable"):
        stratified_fixpoint(workload.program, workload.database)


def test_a6_semantics_disagree_as_documented():
    """Inflationary over-approximates the well-founded wins.

    In round one ``not win(Y)`` holds for every ``Y``, so the
    inflationary semantics derives ``win(x)`` for *every* position with
    an outgoing move — a strict superset of the definitely-won positions
    whenever the game has losses or draws.
    """
    workload = random_game(12, seed=3)
    inflationary = inflationary_fixpoint(workload.program, workload.database)
    model = well_founded(workload.program, workload.database)
    inflationary_wins = set(inflationary.atoms("win"))
    wf_win_true = {a for a in model.true if a.predicate == "win"}
    assert wf_win_true <= inflationary_wins
    assert wf_win_true != inflationary_wins  # seed 3 has non-won movers
