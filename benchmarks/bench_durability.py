#!/usr/bin/env python3
"""Commit-pipeline throughput and recovery-speed benchmark.

Measures the durability tax and what group commit buys back::

    PYTHONPATH=src python benchmarks/bench_durability.py
    PYTHONPATH=src python benchmarks/bench_durability.py --quick \
        --journal-dir ci_journals --out bench_durability.json

Legs (same workload, same rules, fresh database each):

* ``no-journal``     — upper bound: PARK commits with no durability;
* ``fsync-always``   — one fsync per auto-commit (the default, crash-safe
  to the last acknowledged commit);
* ``group-8`` / ``group-32`` — :meth:`ActiveDatabase.group_commit`
  batching, one fsync per N commits (crash-safe to the last barrier);
* ``recovery``       — replaying the fsync-always journal from the
  checkpoint snapshot, reported in records/second.

With ``--journal-dir`` the journals are left on disk so CI can run
``repro journal verify`` over exactly what a real commit history
produced.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
from time import perf_counter

from repro.active import ActiveDatabase

RULES = """
@name(audit) +account(X) -> +audit(X).
@name(close) -account(X), audit(X) -> -audit(X).
"""


def build_db(journal_path):
    db = ActiveDatabase.from_text("account(seed).", journal=journal_path)
    db.add_rules(RULES)
    return db


def run_commits(db, commits, group=None):
    start = perf_counter()
    if group:
        with db.group_commit(group):
            for index in range(commits):
                db.insert("account", "acct_%d" % index)
    else:
        for index in range(commits):
            db.insert("account", "acct_%d" % index)
    return perf_counter() - start


def bench(commits, workdir):
    results = {}

    seconds = run_commits(build_db(None), commits)
    results["no-journal"] = {"seconds": seconds, "commits": commits}

    always_journal = os.path.join(workdir, "commits.journal")
    snapshot = os.path.join(workdir, "base.park")
    db = build_db(always_journal)
    db.checkpoint(snapshot)
    seconds = run_commits(db, commits)
    results["fsync-always"] = {"seconds": seconds, "commits": commits}

    for group in (8, 32):
        path = os.path.join(workdir, "group_%d.journal" % group)
        seconds = run_commits(build_db(path), commits, group=group)
        results["group-%d" % group] = {"seconds": seconds, "commits": commits}

    start = perf_counter()
    recovered = ActiveDatabase.recover(snapshot, always_journal)
    seconds = perf_counter() - start
    replayed = len(recovered.journal.records())
    assert recovered.database == db.database, "recovery diverged"
    results["recovery"] = {"seconds": seconds, "records": replayed}
    return results


def report(results, out):
    base = results["fsync-always"]
    out.write(
        "%-14s %10s %14s %10s\n"
        % ("leg", "seconds", "commits/s", "vs-always")
    )
    for name, entry in results.items():
        if name == "recovery":
            continue
        rate = entry["commits"] / entry["seconds"] if entry["seconds"] else 0
        speedup = base["seconds"] / entry["seconds"] if entry["seconds"] else 0
        out.write(
            "%-14s %10.4f %14.0f %9.2fx\n"
            % (name, entry["seconds"], rate, speedup)
        )
    recovery = results["recovery"]
    rate = (
        recovery["records"] / recovery["seconds"] if recovery["seconds"] else 0
    )
    out.write(
        "%-14s %10.4f %14.0f  (records/s, %d records)\n"
        % ("recovery", recovery["seconds"], rate, recovery["records"])
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--commits", type=int, default=1000)
    parser.add_argument(
        "--quick", action="store_true", help="CI sizing (200 commits)"
    )
    parser.add_argument("--out", default=None, help="also write JSON here")
    parser.add_argument(
        "--journal-dir", default=None,
        help="keep the produced journals in this directory (for "
        "'repro journal verify' smoke checks)",
    )
    args = parser.parse_args(argv)
    commits = 200 if args.quick else args.commits

    if args.journal_dir:
        workdir = args.journal_dir
        os.makedirs(workdir, exist_ok=True)
        cleanup = False
    else:
        workdir = tempfile.mkdtemp(prefix="park-durability-bench-")
        cleanup = True
    try:
        results = bench(commits, workdir)
        report(results, sys.stdout)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump({"commits": commits, "legs": results}, handle, indent=2)
                handle.write("\n")
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
