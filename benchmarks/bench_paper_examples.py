"""Experiments E1-E9: every worked example in the paper, asserted + timed.

Each benchmark recomputes one of the paper's examples, asserts the exact
final database state (and, where relevant, the blocked rules and restart
counts) before timing — a mismatch fails the bench, so the timing numbers
below always describe *correct* runs.
"""

import pytest

from repro.baselines.naive_elimination import naive_elimination
from repro.core.engine import park
from repro.lang import parse_atom, parse_database, parse_program
from repro.lang.updates import insert
from repro.policies.base import Decision, SelectPolicy
from repro.policies.priority import PriorityPolicy
from repro.storage.database import Database

P1 = parse_program("""
@name(r1) p -> +q.
@name(r2) p -> -a.
@name(r3) q -> +a.
""")

P2 = parse_program("""
@name(r1) p -> +q.
@name(r2) p -> -a.
@name(r3) q -> +a.
@name(r4) not a -> +r.
@name(r5) a -> +s.
""")

P3 = parse_program("""
@name(r1) p -> +q.
@name(r2) p -> -q.
@name(r3) q -> +a.
@name(r4) q -> -a.
@name(r5) p -> +a.
""")

GRAPH = parse_program("""
@name(r1) p(X), p(Y) -> +q(X, Y).
@name(r2) q(X, X) -> -q(X, X).
@name(r3) q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
""")

ECA1 = parse_program("""
@name(r1) p(X) -> +q(X).
@name(r2) q(X) -> +r(X).
@name(r3) +r(X) -> -s(X).
""")

ECA2 = parse_program("""
@name(r1) q(X, a) -> -p(X, a).
@name(r2) q(a, X) -> +r(a, X).
@name(r3) +r(X, a) -> +p(X, a).
""")

SEC5 = parse_program("""
@name(r1) @priority(1) p -> +a.
@name(r2) @priority(2) p -> +q.
@name(r3) @priority(3) a -> +b.
@name(r4) @priority(4) a -> -q.
@name(r5) @priority(5) b -> +q.
""")

SEC5_COUNTER = parse_program("""
@name(r1) a -> +b.
@name(r2) a -> +d.
@name(r3) b -> +c.
@name(r4) b -> -d.
@name(r5) c -> -b.
""")


class GraphSelect(SelectPolicy):
    name = "sec42"

    def select(self, context):
        x, y = (str(t) for t in context.conflict.atom.terms)
        if x == y or {x, y} == {"a", "c"}:
            return Decision.DELETE
        return Decision.INSERT


def expect(text):
    return frozenset(parse_database(text))


def test_e1_p1_inertia(benchmark):
    """E1 — paper: final database {p, q}."""
    database = Database.from_text("p.")

    def run():
        result = park(P1, database)
        assert result.atoms == expect("p. q.")
        assert result.blocked_rules() == ["r3"]
        return result

    benchmark(run)


def test_e2_p2_obsolete_consequences(benchmark):
    """E2 — paper: PARK gives {p, q, r}; the strawman wrongly adds s."""
    database = Database.from_text("p.")

    def run():
        result = park(P2, database)
        assert result.atoms == expect("p. q. r.")
        strawman = naive_elimination(P2, database)
        assert strawman.atoms == expect("p. q. r. s.")
        return result

    benchmark(run)


def test_e3_p3_false_conflict(benchmark):
    """E3 — paper: {p, a}; the false ambiguity of a is avoided."""
    database = Database.from_text("p.")

    def run():
        result = park(P3, database)
        assert result.atoms == expect("p. a.")
        strawman = naive_elimination(P3, database)
        assert strawman.atoms == expect("p.")
        return result

    benchmark(run)


def test_e4_irreflexive_graph(benchmark):
    """E4 — paper Section 4.2: custom SELECT keeps 4 arcs, blocks 17."""
    database = Database.from_text("p(a). p(b). p(c).")

    def run():
        result = park(GRAPH, database, policy=GraphSelect())
        assert result.atoms == expect(
            "p(a). p(b). p(c). q(a, b). q(b, a). q(b, c). q(c, b)."
        )
        assert len(result.blocked) == 17
        assert result.stats.restarts == 1
        return result

    benchmark(run)


def test_e5_eca_no_conflict(benchmark):
    """E5 — paper Section 4.3 example 1: {p(a), q(a), q(b), r(a), r(b)}."""
    database = Database.from_text("p(a). s(a). s(b).")
    updates = (insert(parse_atom("q(b)")),)

    def run():
        result = park(ECA1, database, updates=updates)
        assert result.atoms == expect("p(a). q(a). q(b). r(a). r(b).")
        assert result.stats.restarts == 0
        return result

    benchmark(run)


def test_e6_eca_inertia(benchmark):
    """E6 — paper Section 4.3 example 2 (typo-corrected: q(a,a) stays)."""
    database = Database.from_text("p(a, a). p(a, b). p(a, c).")
    updates = (insert(parse_atom("q(a, a)")),)

    def run():
        result = park(ECA2, database, updates=updates)
        assert result.atoms == expect(
            "p(a, a). p(a, b). p(a, c). q(a, a). r(a, a)."
        )
        assert result.blocked_rules() == ["r1"]
        assert result.stats.restarts == 1
        return result

    benchmark(run)


def test_e7_sec5_inertia(benchmark):
    """E7 — paper Section 5 under inertia: {p, a, b}, blocked {r2, r5}."""
    database = Database.from_text("p.")

    def run():
        result = park(SEC5, database)
        assert result.atoms == expect("p. a. b.")
        assert result.blocked_rules() == ["r2", "r5"]
        assert result.stats.restarts == 2
        return result

    benchmark(run)


def test_e8_sec5_priority(benchmark):
    """E8 — same program under rule priority: {p, a, b, q}, blocked {r2, r4}."""
    database = Database.from_text("p.")

    def run():
        result = park(SEC5, database, policy=PriorityPolicy())
        assert result.atoms == expect("p. a. b. q.")
        assert result.blocked_rules() == ["r2", "r4"]
        return result

    benchmark(run)


def test_e9_counterintuitive_inertia(benchmark):
    """E9 — paper Section 5 second inertia example: result {a}."""
    database = Database.from_text("a.")

    def run():
        result = park(SEC5_COUNTER, database)
        assert result.atoms == expect("a.")
        assert result.blocked_rules() == ["r1", "r2"]
        return result

    benchmark(run)
