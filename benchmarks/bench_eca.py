"""Experiment A5: ECA transaction batch-size sweep on the HR workload.

Section 4.3 turns a transaction's updates into rules of ``P_U``; the cost
of a commit should grow roughly linearly in ``|U|`` for this trigger set
(each deactivation touches a constant number of rows).  The series also
exercises the event literals end to end at scale.
"""

import pytest

from benchmarks.conftest import run_and_record

from repro.active import ActiveDatabase
from repro.workloads import deactivation_batch, hr_database, hr_program

POPULATION = 400
BATCHES = [5, 20, 80, 320]


@pytest.mark.parametrize("batch", BATCHES)
def test_a5_deactivation_batch(benchmark, scaling, batch):
    workload = deactivation_batch(POPULATION, batch, seed=2)

    def run():
        result = workload.run()
        assert result.database.count("severance") == batch
        assert result.database.count("payroll") == POPULATION - batch
        return result

    run_and_record(benchmark, scaling, "A5 commit(|U| updates)", batch, run)


@pytest.mark.parametrize("batch", [5, 40])
def test_a5_facade_commit(benchmark, scaling, batch):
    """The same sweep through the ActiveDatabase facade (includes apply)."""

    def run():
        db = ActiveDatabase(hr_database(POPULATION, seed=5))
        db.add_rules(list(hr_program()))
        with db.transaction() as tx:
            for index in range(batch):
                tx.delete("active", "e%d" % index)
        assert db.database.count("severance") == batch
        return tx.result

    run_and_record(benchmark, scaling, "A5 facade-commit(|U|)", batch, run)
