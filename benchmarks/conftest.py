"""Shared benchmark infrastructure.

Scaling benchmarks register ``(series, size, seconds, stats)`` points into
a session-wide registry; at the end of the run a terminal summary prints
each series with its fitted power law — the "same rows/series the paper
reports" requirement (the paper's claims here are complexity claims, so
the series + fitted exponent *are* the reproduced artifact).
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import SweepPoint, fit_power_law


class ScalingRegistry:
    """Collects measured sweep points across benchmark modules."""

    def __init__(self):
        self.series = {}

    def record(self, series_name, size, seconds, stats=None):
        self.series.setdefault(series_name, []).append(
            SweepPoint(size=size, seconds=seconds, stats=stats)
        )

    def report_lines(self):
        lines = []
        for name in sorted(self.series):
            points = sorted(self.series[name], key=lambda p: p.size)
            lines.append("")
            lines.append("series: %s" % name)
            lines.append(
                "%10s  %12s  %8s  %8s  %8s"
                % ("size", "seconds", "rounds", "restarts", "blocked")
            )
            for point in points:
                stats = point.stats
                lines.append(
                    "%10d  %12.6f  %8s  %8s  %8s"
                    % (
                        point.size,
                        point.seconds,
                        getattr(stats, "rounds", ""),
                        getattr(stats, "restarts", ""),
                        getattr(stats, "blocked_instances", ""),
                    )
                )
            sizes = [p.size for p in points]
            if len(set(sizes)) >= 2 and all(p.seconds > 0 for p in points):
                fit = fit_power_law(sizes, [p.seconds for p in points])
                lines.append("fit: %s" % fit)
        return lines


_registry = ScalingRegistry()


@pytest.fixture
def scaling():
    """Access the session-wide scaling registry."""
    return _registry


def pytest_terminal_summary(terminalreporter):
    lines = _registry.report_lines()
    if lines:
        terminalreporter.write_line("")
        terminalreporter.write_line("=" * 32 + " scaling series " + "=" * 32)
        for line in lines:
            terminalreporter.write_line(line)


def run_and_record(benchmark, scaling, series, size, fn):
    """Benchmark *fn*, record its mean runtime under (series, size)."""
    result = benchmark(fn)
    scaling.record(series, size, benchmark.stats.stats.mean, getattr(result, "stats", None))
    return result
