"""Experiment A2: conflict-resolution policy overhead (Section 5).

Paper: "the principles of inertia, rule priority, interactive and random
conflict resolution are all easy to implement and can be viewed as
constant time operations ... the voting scheme's computational properties
are constant-time modulo the complexity of the critics."  We time the
same conflict-ladder workload under every policy; the reproduced shape
is that inertia / priority / random / scripted cluster together and
voting grows with the size of its panel.
"""

import pytest

from benchmarks.conftest import run_and_record

from repro.policies.base import Decision
from repro.policies.composite import ConstantPolicy
from repro.policies.inertia import InertiaPolicy
from repro.policies.interactive import ScriptedPolicy
from repro.policies.priority import PriorityPolicy
from repro.policies.random_choice import RandomPolicy
from repro.policies.specificity import SpecificityPolicy
from repro.policies.voting import VotingPolicy
from repro.workloads import conflict_ladder

WIDTH = 16


def _policy_factories():
    return {
        "inertia": lambda: InertiaPolicy(),
        "priority": lambda: PriorityPolicy(),
        "specificity": lambda: SpecificityPolicy(),
        "random": lambda: RandomPolicy(seed=1, insert_bias=0.0),
        "scripted": lambda: ScriptedPolicy(
            ["delete"] * WIDTH, strict=False, fallback=InertiaPolicy()
        ),
        "voting-3": lambda: VotingPolicy([InertiaPolicy()] * 3),
        "voting-15": lambda: VotingPolicy([InertiaPolicy()] * 15),
        "constant": lambda: ConstantPolicy(Decision.DELETE),
    }


@pytest.mark.parametrize("policy_name", sorted(_policy_factories()))
def test_a2_policy_overhead(benchmark, scaling, policy_name):
    factory = _policy_factories()[policy_name]
    workload = conflict_ladder(WIDTH)

    def run():
        result = workload.run(policy=factory())
        # All these policies resolve the absent-atom ladder the same way.
        workload.check(result)
        assert result.stats.conflicts_resolved == WIDTH
        return result

    result = benchmark(run)
    scaling.record("A2 policy=%s" % policy_name, WIDTH, benchmark.stats.stats.mean,
                   result.stats)


@pytest.mark.parametrize("critics", [1, 5, 25, 125])
def test_a2_voting_scales_with_panel(benchmark, scaling, critics):
    workload = conflict_ladder(WIDTH)

    def run():
        policy = VotingPolicy([InertiaPolicy()] * critics)
        result = workload.run(policy=policy)
        workload.check(result)
        return result

    run_and_record(benchmark, scaling, "A2 voting(#critics)", critics, run)
