"""Experiment C1: polynomial tractability in the database size.

Paper, Section 3/4.2: "the result database state should be computable in
time polynomial in the size of the input database instance".  We sweep
``|D|`` for three workload families (recursive transitive closure,
relational reachability, HR cleanup) and fit ``t ~ c * n^k``; the
reproduced claim is ``k`` staying small (well under cubic) with a clean
fit — see the scaling-series summary printed at the end of the run.
"""

import pytest

from benchmarks.conftest import run_and_record

from repro.workloads import payroll_cleanup, relational_reachability, transitive_closure

TC_SIZES = [10, 20, 40, 80]
REACH_SIZES = [50, 100, 200]
HR_SIZES = [100, 200, 400, 800]


@pytest.mark.parametrize("size", TC_SIZES)
def test_c1_transitive_closure(benchmark, scaling, size):
    workload = transitive_closure(size, seed=11)

    def run():
        result = workload.run()
        assert result.stats.restarts == 0
        return result

    run_and_record(benchmark, scaling, "C1 tc(|D| nodes)", size, run)


@pytest.mark.parametrize("size", REACH_SIZES)
def test_c1_reachability(benchmark, scaling, size):
    workload = relational_reachability(size, fanout=2)

    def run():
        result = workload.run()
        workload.check(result)
        return result

    run_and_record(benchmark, scaling, "C1 reach(|D| nodes)", size, run)


@pytest.mark.parametrize("size", HR_SIZES)
def test_c1_hr_cleanup(benchmark, scaling, size):
    workload = payroll_cleanup(size, inactive_fraction=0.2, seed=3)

    def run():
        return workload.run()

    run_and_record(benchmark, scaling, "C1 hr-cleanup(|D| employees)", size, run)
