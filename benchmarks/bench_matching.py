"""Experiment A4: evaluation-strategy ablation — naive vs. semi-naive.

Not a claim from the paper itself but an ablation of our substrate's main
design choice (DESIGN.md S4): semi-naive evaluation should beat naive
re-derivation on recursive workloads, with the gap growing in |D|.
PARK's inner loop is naive-with-indexes by necessity (validity is
non-monotone under negation/events), so this also bounds what a fancier
Γ could save on the positive fragment.
"""

import pytest

from benchmarks.conftest import run_and_record

from repro.engine.datalog import naive_least_fixpoint, seminaive_least_fixpoint
from repro.workloads import transitive_closure

SIZES = [20, 40, 80]


@pytest.mark.parametrize("size", SIZES)
def test_a4_naive(benchmark, scaling, size):
    workload = transitive_closure(size, seed=9)

    def run():
        return naive_least_fixpoint(workload.program, workload.database)

    run_and_record(benchmark, scaling, "A4 naive tc", size, run)


@pytest.mark.parametrize("size", SIZES)
def test_a4_seminaive(benchmark, scaling, size):
    workload = transitive_closure(size, seed=9)

    def run():
        return seminaive_least_fixpoint(workload.program, workload.database)

    run_and_record(benchmark, scaling, "A4 seminaive tc", size, run)


@pytest.mark.parametrize("size", SIZES)
def test_a4_results_agree(size):
    workload = transitive_closure(size, seed=9)
    assert naive_least_fixpoint(
        workload.program, workload.database
    ) == seminaive_least_fixpoint(workload.program, workload.database)


@pytest.mark.parametrize("size", SIZES)
def test_a4_park_engine_naive(benchmark, scaling, size):
    """The full PARK engine under naive Γ evaluation."""
    from repro.core.engine import park

    workload = transitive_closure(size, seed=9)

    def run():
        return park(workload.program, workload.database, evaluation="naive")

    run_and_record(benchmark, scaling, "A4 park naive-Γ", size, run)


@pytest.mark.parametrize("size", SIZES)
def test_a4_park_engine_seminaive(benchmark, scaling, size):
    """The full PARK engine under semi-naive Γ evaluation."""
    from repro.core.engine import park

    workload = transitive_closure(size, seed=9)

    def run():
        return park(workload.program, workload.database, evaluation="seminaive")

    run_and_record(benchmark, scaling, "A4 park seminaive-Γ", size, run)


@pytest.mark.parametrize("size", SIZES)
def test_a4_park_modes_agree(size):
    from repro.core.engine import park

    workload = transitive_closure(size, seed=9)
    naive = park(workload.program, workload.database, evaluation="naive")
    seminaive = park(workload.program, workload.database, evaluation="seminaive")
    assert naive.atoms == seminaive.atoms
