"""Strategy × backend benchmark runner for the PARK engine.

Runs the scaling workload families used by the pytest benchmark suites
(``bench_scaling_db``, ``bench_scaling_rules``, ``bench_eca``) under all
three Γ evaluation strategies and **both matcher backends** (the slot
``compiled`` register machine and the ``interpreted`` reference
backtracker), and writes ``BENCH_park.json`` with wall time, round
counts, and firings/sec per (workload, strategy, backend), plus two
derived speedups: each delta strategy over naive (on the default
compiled backend) and compiled over interpreted per strategy.  A
storage leg additionally times both relation layouts (``columnar`` and
``row``) under both matcher backends and derives the columnar-over-row
speedup per backend.  A groups leg times every strategy with the
certified-parallel-group batching on vs off (``facts_groups``) and
records the certificate size per workload.  While timing, the runner
also asserts that every (strategy, backend, storage, grouping)
combination stays bit-identical (atoms, blocked set, rounds, restarts,
firings), so a regression shows up as a hard failure rather than a
silently wrong speedup.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--repeats N] [--out PATH] [--quick] [--metrics]

``--quick`` runs a reduced workload list with one repeat — the CI smoke
configuration.

``--metrics`` additionally runs every (strategy, backend) combination
once with a telemetry registry attached and embeds per-phase wall-time
breakdowns plus the semantic counter fingerprint into the report.  The
fingerprint (rounds, epochs, restarts, conflicts, firings, blocked — see
``repro.obs.metrics.SEMANTIC_COUNTERS``) is asserted identical across
all combinations, and a disabled-telemetry overhead check asserts that
runs made *after* metered and audited runs are no slower than runs made
before them (tolerance ``REPRO_OVERHEAD_TOLERANCE``, default 3%) —
catching a leaked metrics registry, a leaked decision trail, and
creeping guard costs on the null path.  The same interleave times the
independence sanitizer (``repro.testing.sanitize``) against a
facts-enabled run with it off, gating a clean run's sanitizer overhead
under the same tolerance.  It also writes two
CI-uploadable artifacts next to the report: a Prometheus text snapshot
(``<out stem>.prom``) and a CRC-framed decision-trail file
(``<out stem>.audit``) that ``repro audit`` can inspect directly.
"""

import argparse
import json
import os
import sys
import time

from repro.engine.match import clear_compile_cache, set_matcher_backend
from repro.lint import ProgramFacts
from repro.obs import Metrics
from repro.testing import sanitize as _sanitize
from repro.obs.audit import AuditLog, DecisionTrail
from repro.obs.export import write_prometheus
from repro.obs.profile import PHASES
from repro.storage.relation import get_storage_backend, set_storage_backend
from repro.workloads import (
    conflict_cascade,
    deactivation_batch,
    payroll_cleanup,
    propositional_chain,
    relational_reachability,
    transitive_closure,
)

STRATEGIES = ("naive", "seminaive", "incremental")
BACKENDS = ("compiled", "interpreted")
STORAGES = ("columnar", "row")


def _workloads(quick=False):
    """(name, workload) pairs — the upper ends of each suite's sweep."""
    if quick:
        return [
            ("tc-40", transitive_closure(40, seed=11)),
            ("reach-100", relational_reachability(100, fanout=2)),
            ("chain-200", propositional_chain(200)),
            ("batch-80", deactivation_batch(400, 80, seed=2)),
        ]
    return [
        ("tc-40", transitive_closure(40, seed=11)),
        ("tc-80", transitive_closure(80, seed=11)),
        ("reach-100", relational_reachability(100, fanout=2)),
        ("reach-200", relational_reachability(200, fanout=2)),
        ("hr-800", payroll_cleanup(800, inactive_fraction=0.2, seed=3)),
        ("cascade-16", conflict_cascade(16)),
        ("chain-200", propositional_chain(200)),
        ("batch-80", deactivation_batch(400, 80, seed=2)),
        ("batch-320", deactivation_batch(400, 320, seed=2)),
    ]


def _fingerprint(result):
    return (
        result.atoms,
        result.blocked,
        result.stats.rounds,
        result.stats.restarts,
        result.stats.firings_total,
    )


def _time_workload(workload, strategy, backend, repeats):
    set_matcher_backend(backend)
    clear_compile_cache()
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = workload.run(evaluation=strategy)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _time_facts_run(workload, repeats):
    """Best-of-N for the default configuration with static facts enabled.

    ``facts=True`` makes the engine analyze the program at run start and
    take every gated fast path it can prove sound (conflict-scan skip,
    auto-seminaive, dead-rule pruning); the caller asserts the result
    fingerprint stayed identical.
    """
    set_matcher_backend("compiled")
    clear_compile_cache()
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = workload.run(evaluation="naive", facts=True)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _groups_leg(name, workload, repeats, baseline):
    """Group-batched collection on vs off, per strategy (compiled backend).

    Times every strategy twice with static facts enabled — once with the
    certified-group batching gate on (the default) and once with
    ``facts_groups=False`` — asserts both fingerprints reproduce the
    ungated baseline bit-for-bit, and derives the on/off speedup.  Also
    records the certificate itself: how many parallel groups the
    analysis found and how many hold more than one rule.
    """
    facts = ProgramFacts.analyze(workload.program)
    leg = {
        "parallel_groups": len(facts.parallel_groups),
        "multi_rule_groups": sum(
            1 for group in facts.parallel_groups if len(group.rules) > 1
        ),
    }
    set_matcher_backend("compiled")
    clear_compile_cache()
    for strategy in STRATEGIES:
        cell = {}
        for label, options in (
            ("grouped", {"facts": True}),
            ("ungrouped", {"facts": True, "facts_groups": False}),
        ):
            best = None
            result = None
            for _ in range(repeats):
                start = time.perf_counter()
                result = workload.run(evaluation=strategy, **options)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
            if _fingerprint(result) != baseline:
                raise AssertionError(
                    "groups leg (%s, %s) diverged from the baseline on "
                    "workload %s" % (strategy, label, name)
                )
            cell[label] = {"wall_time_s": round(best, 6)}
        cell["groups_speedup"] = round(
            cell["ungrouped"]["wall_time_s"] / cell["grouped"]["wall_time_s"],
            2,
        )
        leg[strategy] = cell
    return leg


def _storage_leg(name, workload, repeats, baseline):
    """Both relation layouts under both matcher backends (naive strategy).

    The main leg above already times the default layout (columnar); this
    leg re-times naive/compiled and naive/interpreted under each layout
    explicitly, asserts every combination reproduces the baseline
    fingerprint bit-for-bit, and derives the columnar-over-row speedup
    per backend.  Caller restores the default layout afterwards.
    """
    leg = {}
    for storage in STORAGES:
        set_storage_backend(storage)
        cell = {}
        for backend in BACKENDS:
            seconds, result = _time_workload(workload, "naive", backend, repeats)
            if _fingerprint(result) != baseline:
                raise AssertionError(
                    "storage layout %s/%s diverged from the baseline on "
                    "workload %s" % (storage, backend, name)
                )
            cell[backend] = {"wall_time_s": round(seconds, 6)}
        leg[storage] = cell
    leg["columnar_speedup"] = {
        backend: round(
            leg["row"][backend]["wall_time_s"]
            / leg["columnar"][backend]["wall_time_s"],
            2,
        )
        for backend in BACKENDS
    }
    return leg


def _geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else None


def _metered_run(workload, strategy, backend):
    """One run with a fresh registry attached; returns its Metrics."""
    set_matcher_backend(backend)
    clear_compile_cache()
    metrics = Metrics()
    workload.run(evaluation=strategy, metrics=metrics)
    return metrics


def _workload_telemetry(name, workload):
    """Phase breakdowns and the cross-combination counter fingerprint.

    Runs every (strategy, backend) combination once with telemetry on.
    The semantic fingerprint must be identical on all of them — the
    counters it covers describe the PARK computation, not the machinery —
    so any divergence is a correctness failure, not a perf artifact.
    """
    fingerprints = {}
    phases = {}
    counters = {}
    for strategy in STRATEGIES:
        for backend in BACKENDS:
            metrics = _metered_run(workload, strategy, backend)
            fingerprints[(strategy, backend)] = metrics.fingerprint()
            if backend == "compiled":
                breakdown = {}
                for phase, _label in PHASES:
                    entry = metrics.timers.get(phase)
                    if entry is not None:
                        breakdown[phase] = {
                            "calls": entry[0],
                            "seconds": round(entry[1], 6),
                        }
                phases[strategy] = breakdown
                counters[strategy] = dict(sorted(metrics.counters.items()))
    baseline = fingerprints[("naive", "compiled")]
    for key, fingerprint in fingerprints.items():
        if fingerprint != baseline:
            raise AssertionError(
                "telemetry fingerprint diverged on workload %s: %s/%s got %r,"
                " naive/compiled got %r"
                % (name, key[0], key[1], fingerprint, baseline)
            )
    return {
        "fingerprint": [[key, value] for key, value in baseline],
        "phases": phases,
        "counters": counters,
    }


#: Workloads the disabled-overhead check times (the matcher-bound ones).
OVERHEAD_WORKLOADS = ("tc-40", "reach-100")


def _overhead_check(workloads, repeats, tolerance, verbose=True):
    """Assert the null-telemetry path stays fast after metered runs.

    For each matcher-bound workload: interleave disabled, metered,
    audited, and again-disabled runs (best-of-N each, on
    incremental/compiled — the hottest configuration), so machine drift
    hits all four equally.  ``after/before`` must stay under
    ``1 + tolerance``; a leaked active registry (metrics *or* decision
    trail) or new unguarded work on the null path shows up here as a
    hard failure.
    """
    checks = {}
    rounds = max(repeats, 5)
    by_name = dict(workloads)
    for name in OVERHEAD_WORKLOADS:
        workload = by_name.get(name)
        if workload is None:
            continue
        set_matcher_backend("compiled")
        clear_compile_cache()

        def timed(**options):
            start = time.perf_counter()
            workload.run(evaluation="incremental", **options)
            return time.perf_counter() - start

        timed()  # warm the compile caches outside the measurement
        trail = DecisionTrail()
        before = enabled = audited = after = None
        facts_base = sanitized = None
        for _ in range(rounds):
            sample = timed()
            if before is None or sample < before:
                before = sample
            sample = timed(metrics=Metrics())
            if enabled is None or sample < enabled:
                enabled = sample
            sample = timed(audit=trail)
            if audited is None or sample < audited:
                audited = sample
            # Sanitizer samples ride the same interleave: a facts-enabled
            # run with the sanitizer off, then the same run with it on.
            sample = timed(facts=True)
            if facts_base is None or sample < facts_base:
                facts_base = sample
            previous = _sanitize.set_active(_sanitize.IndependenceSanitizer())
            try:
                sample = timed(facts=True)
            finally:
                _sanitize.set_active(previous)
            if sanitized is None or sample < sanitized:
                sanitized = sample
            sample = timed()
            if after is None or sample < after:
                after = sample
        ratio = after / before
        sanitize_ratio = sanitized / facts_base
        entry = {
            "disabled_before_s": round(before, 6),
            "disabled_after_s": round(after, 6),
            "enabled_s": round(enabled, 6),
            "audited_s": round(audited, 6),
            "facts_s": round(facts_base, 6),
            "sanitized_s": round(sanitized, 6),
            "disabled_ratio": round(ratio, 4),
            "enabled_overhead": round(enabled / before, 4),
            "audited_overhead": round(audited / before, 4),
            "sanitize_overhead": round(sanitize_ratio, 4),
            "tolerance": tolerance,
        }
        checks[name] = entry
        if verbose:
            print(
                "%-12s disabled %8.4fs -> %8.4fs after metered runs "
                "(ratio %.3f, tolerance %.2f); enabled %8.4fs (%.2fx); "
                "audited %8.4fs (%.2fx); sanitized %8.4fs (%.2fx vs facts)"
                % (
                    name,
                    before,
                    after,
                    ratio,
                    1.0 + tolerance,
                    enabled,
                    enabled / before,
                    audited,
                    audited / before,
                    sanitized,
                    sanitize_ratio,
                )
            )
        if ratio > 1.0 + tolerance:
            raise AssertionError(
                "disabled-telemetry path slowed down by %.1f%% on %s "
                "(tolerance %.0f%%): an active registry or decision "
                "trail leaked, or the null-telemetry fast path regressed"
                % ((ratio - 1.0) * 100, name, tolerance * 100)
            )
        if sanitize_ratio > 1.0 + tolerance:
            raise AssertionError(
                "independence sanitizer added %.1f%% to a clean run on %s "
                "(tolerance %.0f%%): the per-round certificate check is "
                "no longer cheap when nothing is violated"
                % ((sanitize_ratio - 1.0) * 100, name, tolerance * 100)
            )
    return checks


def _telemetry_artifacts(out, verbose=True):
    """Write the CI-uploadable telemetry artifacts next to the report.

    ``<out stem>.prom`` — Prometheus text-format snapshot of a metered
    run (the same registry the phase breakdowns come from).
    ``<out stem>.audit`` — the decision trail of a conflict-bearing run,
    in the CRC-framed format the :class:`~repro.active.activedb`
    sidecar uses, so ``repro audit verify``/``show``/``inspect`` work
    on the artifact unchanged.
    """
    base = os.path.splitext(out)[0]
    set_matcher_backend("compiled")
    clear_compile_cache()
    metrics = Metrics()
    trail = DecisionTrail()
    conflict_cascade(8).run(
        evaluation="incremental", metrics=metrics, audit=trail
    )
    prom_path = base + ".prom"
    write_prometheus(metrics, prom_path)
    audit_path = base + ".audit"
    if os.path.exists(audit_path):
        os.remove(audit_path)
    AuditLog(audit_path).append(1, trail)
    if verbose:
        print("wrote %s and %s" % (prom_path, audit_path))
    return {"prometheus": prom_path, "audit": audit_path}


def run(repeats=3, out="BENCH_park.json", verbose=True, quick=False,
        metrics=False, overhead_tolerance=None):
    if overhead_tolerance is None:
        overhead_tolerance = float(
            os.environ.get("REPRO_OVERHEAD_TOLERANCE") or 0.03
        )
    report = {
        "repeats": repeats,
        "quick": quick,
        "metrics": metrics,
        "strategies": list(STRATEGIES),
        "backends": list(BACKENDS),
        "storages": list(STORAGES),
        "workloads": {},
    }
    workloads = _workloads(quick=quick)
    default_storage = get_storage_backend()
    try:
        for name, workload in workloads:
            entry = {}
            fingerprints = {}
            for strategy in STRATEGIES:
                cell = {}
                for backend in BACKENDS:
                    seconds, result = _time_workload(
                        workload, strategy, backend, repeats
                    )
                    fingerprints[(strategy, backend)] = _fingerprint(result)
                    cell[backend] = {
                        "wall_time_s": round(seconds, 6),
                        "rounds": result.stats.rounds,
                        "restarts": result.stats.restarts,
                        "firings_total": result.stats.firings_total,
                        "firings_per_s": round(
                            result.stats.firings_total / seconds, 1
                        )
                        if seconds > 0
                        else None,
                    }
                cell["backend_speedup"] = round(
                    cell["interpreted"]["wall_time_s"]
                    / cell["compiled"]["wall_time_s"],
                    2,
                )
                entry[strategy] = cell
            baseline = fingerprints[("naive", "compiled")]
            for key, fingerprint in fingerprints.items():
                if fingerprint != baseline:
                    raise AssertionError(
                        "%s/%s diverged from naive/compiled on workload %s"
                        % (key[0], key[1], name)
                    )
            for strategy in STRATEGIES[1:]:
                entry[strategy]["speedup_vs_naive"] = round(
                    entry["naive"]["compiled"]["wall_time_s"]
                    / entry[strategy]["compiled"]["wall_time_s"],
                    2,
                )
            entry["backend_speedup_geomean"] = round(
                _geomean(
                    [entry[s]["backend_speedup"] for s in STRATEGIES]
                ),
                2,
            )
            facts_seconds, facts_result = _time_facts_run(workload, repeats)
            if _fingerprint(facts_result) != baseline:
                raise AssertionError(
                    "facts-enabled run diverged from naive/compiled on "
                    "workload %s" % name
                )
            entry["facts"] = {
                "wall_time_s": round(facts_seconds, 6),
                "speedup_vs_naive": round(
                    entry["naive"]["compiled"]["wall_time_s"] / facts_seconds,
                    2,
                ),
            }
            entry["groups"] = _groups_leg(name, workload, repeats, baseline)
            entry["storage"] = _storage_leg(name, workload, repeats, baseline)
            set_storage_backend(default_storage)
            if metrics:
                entry["telemetry"] = _workload_telemetry(name, workload)
            report["workloads"][name] = entry
            if verbose:
                print(
                    "%-12s naive %8.4fs   seminaive %8.4fs (%.2fx)   "
                    "incremental %8.4fs (%.2fx)   facts %8.4fs (%.2fx)   "
                    "compiled/interpreted %.2fx"
                    % (
                        name,
                        entry["naive"]["compiled"]["wall_time_s"],
                        entry["seminaive"]["compiled"]["wall_time_s"],
                        entry["seminaive"]["speedup_vs_naive"],
                        entry["incremental"]["compiled"]["wall_time_s"],
                        entry["incremental"]["speedup_vs_naive"],
                        entry["facts"]["wall_time_s"],
                        entry["facts"]["speedup_vs_naive"],
                        entry["backend_speedup_geomean"],
                    )
                )
                print(
                    "%-12s storage columnar/row: compiled %.2fx   "
                    "interpreted %.2fx"
                    % (
                        "",
                        entry["storage"]["columnar_speedup"]["compiled"],
                        entry["storage"]["columnar_speedup"]["interpreted"],
                    )
                )
                print(
                    "%-12s groups: %d certified (%d multi-rule)   "
                    "batched/unbatched naive %.2fx  seminaive %.2fx  "
                    "incremental %.2fx"
                    % (
                        "",
                        entry["groups"]["parallel_groups"],
                        entry["groups"]["multi_rule_groups"],
                        entry["groups"]["naive"]["groups_speedup"],
                        entry["groups"]["seminaive"]["groups_speedup"],
                        entry["groups"]["incremental"]["groups_speedup"],
                    )
                )
        if metrics:
            report["telemetry_overhead"] = _overhead_check(
                workloads, repeats, overhead_tolerance, verbose=verbose
            )
            report["artifacts"] = _telemetry_artifacts(out, verbose=verbose)
    finally:
        set_matcher_backend("compiled")
        set_storage_backend(default_storage)
        clear_compile_cache()
    doubled = [
        name
        for name, entry in report["workloads"].items()
        if entry["incremental"]["speedup_vs_naive"] >= 2.0
    ]
    report["incremental_2x_workloads"] = doubled
    accelerated = [
        name
        for name, entry in report["workloads"].items()
        if entry["backend_speedup_geomean"] >= 1.5
    ]
    report["compiled_1_5x_workloads"] = accelerated
    facts_wins = [
        name
        for name, entry in report["workloads"].items()
        if entry["facts"]["speedup_vs_naive"] >= 1.2
    ]
    report["facts_accelerated_workloads"] = facts_wins
    columnar_wins = [
        name
        for name, entry in report["workloads"].items()
        if entry["storage"]["columnar_speedup"]["compiled"] >= 1.2
    ]
    report["columnar_accelerated_workloads"] = columnar_wins
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if verbose:
        print(
            "incremental >= 2x on %d/%d workloads: %s"
            % (len(doubled), len(report["workloads"]), ", ".join(doubled))
        )
        print(
            "compiled >= 1.5x interpreted on %d/%d workloads: %s"
            % (
                len(accelerated),
                len(report["workloads"]),
                ", ".join(accelerated),
            )
        )
        print(
            "static facts >= 1.2x naive on %d/%d workloads: %s"
            % (
                len(facts_wins),
                len(report["workloads"]),
                ", ".join(facts_wins),
            )
        )
        print(
            "columnar >= 1.2x row (compiled) on %d/%d workloads: %s"
            % (
                len(columnar_wins),
                len(report["workloads"]),
                ", ".join(columnar_wins),
            )
        )
        print("wrote %s" % out)
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_park.json")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced workload list, one repeat (CI smoke)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="embed phase breakdowns + counter fingerprints, assert the "
        "fingerprint identical across combinations, run the "
        "disabled-telemetry overhead check, and write the Prometheus + "
        "decision-trail artifacts next to --out",
    )
    args = parser.parse_args(argv)
    if args.quick and args.repeats == parser.get_default("repeats"):
        args.repeats = 1
    run(repeats=args.repeats, out=args.out, quick=args.quick,
        metrics=args.metrics)
    return 0


if __name__ == "__main__":
    sys.exit(main())
