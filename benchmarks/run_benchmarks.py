"""Strategy × backend benchmark runner for the PARK engine.

Runs the scaling workload families used by the pytest benchmark suites
(``bench_scaling_db``, ``bench_scaling_rules``, ``bench_eca``) under all
three Γ evaluation strategies and **both matcher backends** (the slot
``compiled`` register machine and the ``interpreted`` reference
backtracker), and writes ``BENCH_park.json`` with wall time, round
counts, and firings/sec per (workload, strategy, backend), plus two
derived speedups: each delta strategy over naive (on the default
compiled backend) and compiled over interpreted per strategy.  While
timing it also asserts that every (strategy, backend) combination stays
bit-identical (atoms, blocked set, rounds, restarts, firings), so a
regression shows up as a hard failure rather than a silently wrong
speedup.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--repeats N] [--out PATH] [--quick]

``--quick`` runs a reduced workload list with one repeat — the CI smoke
configuration.
"""

import argparse
import json
import sys
import time

from repro.engine.match import clear_compile_cache, set_matcher_backend
from repro.workloads import (
    conflict_cascade,
    deactivation_batch,
    payroll_cleanup,
    propositional_chain,
    relational_reachability,
    transitive_closure,
)

STRATEGIES = ("naive", "seminaive", "incremental")
BACKENDS = ("compiled", "interpreted")


def _workloads(quick=False):
    """(name, workload) pairs — the upper ends of each suite's sweep."""
    if quick:
        return [
            ("tc-40", transitive_closure(40, seed=11)),
            ("reach-100", relational_reachability(100, fanout=2)),
            ("chain-200", propositional_chain(200)),
            ("batch-80", deactivation_batch(400, 80, seed=2)),
        ]
    return [
        ("tc-40", transitive_closure(40, seed=11)),
        ("tc-80", transitive_closure(80, seed=11)),
        ("reach-100", relational_reachability(100, fanout=2)),
        ("reach-200", relational_reachability(200, fanout=2)),
        ("hr-800", payroll_cleanup(800, inactive_fraction=0.2, seed=3)),
        ("cascade-16", conflict_cascade(16)),
        ("chain-200", propositional_chain(200)),
        ("batch-80", deactivation_batch(400, 80, seed=2)),
        ("batch-320", deactivation_batch(400, 320, seed=2)),
    ]


def _fingerprint(result):
    return (
        result.atoms,
        result.blocked,
        result.stats.rounds,
        result.stats.restarts,
        result.stats.firings_total,
    )


def _time_workload(workload, strategy, backend, repeats):
    set_matcher_backend(backend)
    clear_compile_cache()
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = workload.run(evaluation=strategy)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else None


def run(repeats=3, out="BENCH_park.json", verbose=True, quick=False):
    report = {
        "repeats": repeats,
        "quick": quick,
        "strategies": list(STRATEGIES),
        "backends": list(BACKENDS),
        "workloads": {},
    }
    try:
        for name, workload in _workloads(quick=quick):
            entry = {}
            fingerprints = {}
            for strategy in STRATEGIES:
                cell = {}
                for backend in BACKENDS:
                    seconds, result = _time_workload(
                        workload, strategy, backend, repeats
                    )
                    fingerprints[(strategy, backend)] = _fingerprint(result)
                    cell[backend] = {
                        "wall_time_s": round(seconds, 6),
                        "rounds": result.stats.rounds,
                        "restarts": result.stats.restarts,
                        "firings_total": result.stats.firings_total,
                        "firings_per_s": round(
                            result.stats.firings_total / seconds, 1
                        )
                        if seconds > 0
                        else None,
                    }
                cell["backend_speedup"] = round(
                    cell["interpreted"]["wall_time_s"]
                    / cell["compiled"]["wall_time_s"],
                    2,
                )
                entry[strategy] = cell
            baseline = fingerprints[("naive", "compiled")]
            for key, fingerprint in fingerprints.items():
                if fingerprint != baseline:
                    raise AssertionError(
                        "%s/%s diverged from naive/compiled on workload %s"
                        % (key[0], key[1], name)
                    )
            for strategy in STRATEGIES[1:]:
                entry[strategy]["speedup_vs_naive"] = round(
                    entry["naive"]["compiled"]["wall_time_s"]
                    / entry[strategy]["compiled"]["wall_time_s"],
                    2,
                )
            entry["backend_speedup_geomean"] = round(
                _geomean(
                    [entry[s]["backend_speedup"] for s in STRATEGIES]
                ),
                2,
            )
            report["workloads"][name] = entry
            if verbose:
                print(
                    "%-12s naive %8.4fs   seminaive %8.4fs (%.2fx)   "
                    "incremental %8.4fs (%.2fx)   compiled/interpreted %.2fx"
                    % (
                        name,
                        entry["naive"]["compiled"]["wall_time_s"],
                        entry["seminaive"]["compiled"]["wall_time_s"],
                        entry["seminaive"]["speedup_vs_naive"],
                        entry["incremental"]["compiled"]["wall_time_s"],
                        entry["incremental"]["speedup_vs_naive"],
                        entry["backend_speedup_geomean"],
                    )
                )
    finally:
        set_matcher_backend("compiled")
        clear_compile_cache()
    doubled = [
        name
        for name, entry in report["workloads"].items()
        if entry["incremental"]["speedup_vs_naive"] >= 2.0
    ]
    report["incremental_2x_workloads"] = doubled
    accelerated = [
        name
        for name, entry in report["workloads"].items()
        if entry["backend_speedup_geomean"] >= 1.5
    ]
    report["compiled_1_5x_workloads"] = accelerated
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if verbose:
        print(
            "incremental >= 2x on %d/%d workloads: %s"
            % (len(doubled), len(report["workloads"]), ", ".join(doubled))
        )
        print(
            "compiled >= 1.5x interpreted on %d/%d workloads: %s"
            % (
                len(accelerated),
                len(report["workloads"]),
                ", ".join(accelerated),
            )
        )
        print("wrote %s" % out)
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_park.json")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced workload list, one repeat (CI smoke)",
    )
    args = parser.parse_args(argv)
    if args.quick and args.repeats == parser.get_default("repeats"):
        args.repeats = 1
    run(repeats=args.repeats, out=args.out, quick=args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
