"""Strategy-comparison benchmark runner: naive vs seminaive vs incremental.

Runs the scaling workload families used by the pytest benchmark suites
(``bench_scaling_db``, ``bench_scaling_rules``, ``bench_eca``) under all
three Γ evaluation strategies and writes ``BENCH_park.json`` with wall
time, round counts, and firings/sec per workload, plus the speedup of
each delta strategy over naive.  While timing it also asserts the
strategies stay bit-identical (atoms, blocked set, rounds, restarts,
firings), so a regression shows up as a hard failure rather than a
silently wrong speedup.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--repeats N] [--out PATH]
"""

import argparse
import json
import sys
import time

from repro.workloads import (
    conflict_cascade,
    deactivation_batch,
    payroll_cleanup,
    propositional_chain,
    relational_reachability,
    transitive_closure,
)

STRATEGIES = ("naive", "seminaive", "incremental")


def _workloads():
    """(name, workload) pairs — the upper ends of each suite's sweep."""
    return [
        ("tc-40", transitive_closure(40, seed=11)),
        ("tc-80", transitive_closure(80, seed=11)),
        ("reach-100", relational_reachability(100, fanout=2)),
        ("reach-200", relational_reachability(200, fanout=2)),
        ("hr-800", payroll_cleanup(800, inactive_fraction=0.2, seed=3)),
        ("cascade-16", conflict_cascade(16)),
        ("chain-200", propositional_chain(200)),
        ("batch-80", deactivation_batch(400, 80, seed=2)),
        ("batch-320", deactivation_batch(400, 320, seed=2)),
    ]


def _fingerprint(result):
    return (
        result.atoms,
        result.blocked,
        result.stats.rounds,
        result.stats.restarts,
        result.stats.firings_total,
    )


def _time_workload(workload, strategy, repeats):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = workload.run(evaluation=strategy)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def run(repeats=3, out="BENCH_park.json", verbose=True):
    report = {"repeats": repeats, "strategies": list(STRATEGIES), "workloads": {}}
    for name, workload in _workloads():
        entry = {}
        fingerprints = {}
        for strategy in STRATEGIES:
            seconds, result = _time_workload(workload, strategy, repeats)
            fingerprints[strategy] = _fingerprint(result)
            entry[strategy] = {
                "wall_time_s": round(seconds, 6),
                "rounds": result.stats.rounds,
                "restarts": result.stats.restarts,
                "firings_total": result.stats.firings_total,
                "firings_per_s": round(result.stats.firings_total / seconds, 1)
                if seconds > 0
                else None,
            }
        for strategy in STRATEGIES[1:]:
            if fingerprints[strategy] != fingerprints["naive"]:
                raise AssertionError(
                    "%s diverged from naive on workload %s" % (strategy, name)
                )
            entry[strategy]["speedup_vs_naive"] = round(
                entry["naive"]["wall_time_s"] / entry[strategy]["wall_time_s"], 2
            )
        report["workloads"][name] = entry
        if verbose:
            print(
                "%-12s naive %8.4fs   seminaive %8.4fs (%.2fx)   incremental %8.4fs (%.2fx)"
                % (
                    name,
                    entry["naive"]["wall_time_s"],
                    entry["seminaive"]["wall_time_s"],
                    entry["seminaive"]["speedup_vs_naive"],
                    entry["incremental"]["wall_time_s"],
                    entry["incremental"]["speedup_vs_naive"],
                )
            )
    doubled = [
        name
        for name, entry in report["workloads"].items()
        if entry["incremental"]["speedup_vs_naive"] >= 2.0
    ]
    report["incremental_2x_workloads"] = doubled
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if verbose:
        print(
            "incremental >= 2x on %d/%d workloads: %s"
            % (len(doubled), len(report["workloads"]), ", ".join(doubled))
        )
        print("wrote %s" % out)
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_park.json")
    args = parser.parse_args(argv)
    run(repeats=args.repeats, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
