"""Experiment A1: blocking granularity ablation (paper's Section 4.2 note).

The paper observes that its blocked-set definition may block instances
"unnecessarily" and suggests including "only (a non-empty) part of
conflicts into blocked".  ALL mode resolves every detected conflict per
restart (few restarts, large blocked sets); MINIMAL resolves one (many
restarts, smallest blocked sets).  Both must produce the same final
database on the ladder family; the trade-off shows up in runtime,
restart count and |B|.
"""

import pytest

from benchmarks.conftest import run_and_record

from repro.core.blocking import BlockingMode
from repro.workloads import conflict_ladder, irreflexive_graph

WIDTHS = [4, 8, 16]
NODES = [3, 4, 5]


@pytest.mark.parametrize("width", WIDTHS)
def test_a1_ladder_all(benchmark, scaling, width):
    workload = conflict_ladder(width)

    def run():
        result = workload.run(blocking_mode=BlockingMode.ALL)
        workload.check(result)
        assert result.stats.restarts == 1
        return result

    run_and_record(benchmark, scaling, "A1 ladder ALL", width, run)


@pytest.mark.parametrize("width", WIDTHS)
def test_a1_ladder_minimal(benchmark, scaling, width):
    workload = conflict_ladder(width)

    def run():
        result = workload.run(blocking_mode=BlockingMode.MINIMAL)
        workload.check(result)
        assert result.stats.restarts == width
        return result

    run_and_record(benchmark, scaling, "A1 ladder MINIMAL", width, run)


@pytest.mark.parametrize("nodes", NODES)
def test_a1_graph_all(benchmark, scaling, nodes):
    names = tuple("n%d" % i for i in range(nodes))
    workload = irreflexive_graph(names, cut_pair=(names[0], names[-1]))

    def run():
        result = workload.run(blocking_mode=BlockingMode.ALL)
        workload.check(result)
        return result

    run_and_record(benchmark, scaling, "A1 graph ALL", nodes, run)


@pytest.mark.parametrize("nodes", NODES)
def test_a1_graph_minimal(benchmark, scaling, nodes):
    names = tuple("n%d" % i for i in range(nodes))
    workload = irreflexive_graph(names, cut_pair=(names[0], names[-1]))

    def run():
        result = workload.run(blocking_mode=BlockingMode.MINIMAL)
        workload.check(result)
        return result

    run_and_record(benchmark, scaling, "A1 graph MINIMAL", nodes, run)


def test_a1_minimal_blocks_fewer_instances():
    """The paper's point, asserted directly: MINIMAL's final B is smaller
    on the graph family (ALL blocks r3 instances 'unnecessarily')."""
    workload = irreflexive_graph(("a", "b", "c"))
    all_result = workload.run(blocking_mode=BlockingMode.ALL)
    minimal_result = workload.run(blocking_mode=BlockingMode.MINIMAL)
    workload.check(all_result)
    workload.check(minimal_result)
    assert minimal_result.stats.blocked_instances <= all_result.stats.blocked_instances
    assert minimal_result.stats.restarts >= all_result.stats.restarts
