"""Experiment A3: PARK vs. the deductive baselines.

The reproduced shape: on conflict-free programs PARK costs the same as
the inflationary fixpoint it extends (the conflict machinery is pure
bookkeeping there), while on conflict-heavy programs PARK pays for its
restarts — the strawman is cheaper but *wrong* (its E2/E3 answers differ,
which the paper-example benches already assert).
"""

import pytest

from benchmarks.conftest import run_and_record

from repro.baselines.inflationary import inflationary_fixpoint, stubborn_fixpoint
from repro.baselines.naive_elimination import naive_elimination
from repro.core.engine import park
from repro.engine.datalog import naive_least_fixpoint, seminaive_least_fixpoint
from repro.workloads import conflict_cascade, transitive_closure

TC_NODES = 60
CASCADE_DEPTH = 16


@pytest.fixture(scope="module")
def tc_workload():
    return transitive_closure(TC_NODES, seed=4)


@pytest.fixture(scope="module")
def cascade_workload():
    return conflict_cascade(CASCADE_DEPTH)


class TestConflictFree:
    def test_a3_park(self, benchmark, scaling, tc_workload):
        def run():
            result = tc_workload.run()
            assert result.stats.restarts == 0
            return result

        run_and_record(benchmark, scaling, "A3 conflict-free park", TC_NODES, run)

    def test_a3_inflationary(self, benchmark, scaling, tc_workload):
        def run():
            return inflationary_fixpoint(tc_workload.program, tc_workload.database)

        run_and_record(benchmark, scaling, "A3 conflict-free inflationary", TC_NODES, run)

    def test_a3_datalog_naive(self, benchmark, scaling, tc_workload):
        def run():
            return naive_least_fixpoint(tc_workload.program, tc_workload.database)

        run_and_record(benchmark, scaling, "A3 conflict-free datalog-naive", TC_NODES, run)

    def test_a3_datalog_seminaive(self, benchmark, scaling, tc_workload):
        def run():
            return seminaive_least_fixpoint(tc_workload.program, tc_workload.database)

        run_and_record(
            benchmark, scaling, "A3 conflict-free datalog-seminaive", TC_NODES, run
        )

    def test_a3_all_semantics_agree(self, tc_workload):
        park_db = park(tc_workload.program, tc_workload.database).database
        assert park_db == inflationary_fixpoint(
            tc_workload.program, tc_workload.database
        )
        assert park_db == seminaive_least_fixpoint(
            tc_workload.program, tc_workload.database
        )


class TestConflictHeavy:
    def test_a3_park_cascade(self, benchmark, scaling, cascade_workload):
        def run():
            result = cascade_workload.run()
            cascade_workload.check(result)
            return result

        run_and_record(benchmark, scaling, "A3 cascade park", CASCADE_DEPTH, run)

    def test_a3_strawman_cascade(self, benchmark, scaling, cascade_workload):
        def run():
            return naive_elimination(
                cascade_workload.program, cascade_workload.database
            )

        run_and_record(benchmark, scaling, "A3 cascade strawman", CASCADE_DEPTH, run)

    def test_a3_stubborn_cascade(self, benchmark, scaling, cascade_workload):
        def run():
            return stubborn_fixpoint(
                cascade_workload.program, cascade_workload.database
            )

        run_and_record(benchmark, scaling, "A3 cascade stubborn-Γ", CASCADE_DEPTH, run)
