"""Parallel Γ benchmark leg: sequential vs `--parallel N` on tc/reach.

Times the naive strategy — the one whose collect phase dominates — on
the transitive-closure and chain-reachability families at 10^5–10^6
collected firings, sequentially and with the
:class:`~repro.engine.parallel.ParallelExecutor` at 2 and 4 workers,
under both matcher backends.  Every parallel run is asserted
fingerprint-identical to its sequential twin (atoms, blocked set,
rounds, restarts, firings) and — when ``--metrics`` — the semantic
counter fingerprint is asserted identical too, so a speedup can never
hide a semantic divergence.

The leg is merged into the report under a top-level ``"parallel"`` key
(default ``BENCH_park.json``, created if absent), which
``check_fingerprints.py`` gates in CI: the leg must be present, every
workload must record ``fingerprint_identical`` and per-worker timings,
and the committed full-size baseline must show >1.5x at 4 workers on at
least one tc/reach workload (``--gate``, on by default for full runs).

Machine note: speedup at 4 workers comes from two places — genuine
multi-core match parallelism, and the parallel path's per-epoch work
model (workers ship each binding payload once as a delta and keep
standing match state for monotone rules; the parent memoizes grounding
reconstruction across rounds).  On few-core machines the second
mechanism dominates; the recorded numbers are honest wall-clock either
way.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--repeats N] [--quick] [--metrics] [--no-gate] [--out BENCH_park.json]

``--quick`` runs reduced sizes with the gate off — the CI smoke
configuration (fingerprint identity is still asserted).
"""

import argparse
import json
import os
import sys
import time

from repro.engine.match import clear_compile_cache, set_matcher_backend
from repro.obs import Metrics
from repro.workloads import relational_reachability, transitive_closure

BACKENDS = ("interpreted", "compiled")
WORKER_COUNTS = (2, 4)
GATE_SPEEDUP = 1.5


def _workloads(quick=False):
    if quick:
        return [
            ("reach-200", relational_reachability(200, fanout=4)),
            ("tc-40", transitive_closure(40, seed=11)),
        ]
    return [
        ("reach-400", relational_reachability(400, fanout=4)),
        ("reach-800", relational_reachability(800, fanout=4)),
        ("tc-100", transitive_closure(100, seed=11)),
    ]


def _fingerprint(result):
    return (
        result.atoms,
        result.blocked,
        result.stats.rounds,
        result.stats.restarts,
        result.stats.firings_total,
    )


def _time(workload, backend, workers, repeats):
    set_matcher_backend(backend)
    clear_compile_cache()
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = workload.run(evaluation="naive", parallel=workers)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _metered_fingerprints(workload, workers):
    """Semantic counter fingerprints of a sequential and a parallel run."""
    set_matcher_backend("interpreted")
    clear_compile_cache()
    sequential = Metrics()
    workload.run(evaluation="naive", metrics=sequential, parallel=0)
    parallel = Metrics()
    workload.run(evaluation="naive", metrics=parallel, parallel=workers)
    return sequential.fingerprint(), parallel.fingerprint()


def run(repeats=2, out="BENCH_park.json", quick=False, metrics=False,
        gate=True, verbose=True):
    leg = {
        "strategy": "naive",
        "workers": list(WORKER_COUNTS),
        "quick": quick,
        "gate_speedup": GATE_SPEEDUP,
        "workloads": {},
    }
    best_gate = None
    for name, workload in _workloads(quick=quick):
        entry = {}
        for backend in BACKENDS:
            sequential_s, sequential_result = _time(
                workload, backend, 0, repeats
            )
            baseline = _fingerprint(sequential_result)
            cell = {
                "sequential_s": round(sequential_s, 6),
                "firings_total": sequential_result.stats.firings_total,
                "rounds": sequential_result.stats.rounds,
            }
            for workers in WORKER_COUNTS:
                parallel_s, parallel_result = _time(
                    workload, backend, workers, repeats
                )
                if _fingerprint(parallel_result) != baseline:
                    raise AssertionError(
                        "parallel run (%s, %d workers) diverged from "
                        "sequential on workload %s" % (backend, workers, name)
                    )
                cell["workers_%d_s" % workers] = round(parallel_s, 6)
                cell["speedup_%dw" % workers] = round(
                    sequential_s / parallel_s, 2
                )
            entry[backend] = cell
            speedup = cell["speedup_4w"]
            if best_gate is None or speedup > best_gate["speedup_4w"]:
                best_gate = {
                    "workload": name,
                    "backend": backend,
                    "speedup_4w": speedup,
                }
            if verbose:
                print(
                    "%-10s %-11s seq %7.3fs  2w %7.3fs (%.2fx)  4w %7.3fs "
                    "(%.2fx)  firings=%d"
                    % (
                        name,
                        backend,
                        cell["sequential_s"],
                        cell["workers_2_s"],
                        cell["speedup_2w"],
                        cell["workers_4_s"],
                        cell["speedup_4w"],
                        cell["firings_total"],
                    )
                )
        entry["fingerprint_identical"] = True
        if metrics:
            sequential_fp, parallel_fp = _metered_fingerprints(workload, 4)
            if sequential_fp != parallel_fp:
                raise AssertionError(
                    "semantic counter fingerprint diverged under --parallel "
                    "on workload %s: sequential %r, parallel %r"
                    % (name, sequential_fp, parallel_fp)
                )
            entry["fingerprint"] = [list(pair) for pair in sequential_fp]
        leg["workloads"][name] = entry
    leg["best"] = best_gate
    if gate and not quick:
        if best_gate is None or best_gate["speedup_4w"] < GATE_SPEEDUP:
            raise AssertionError(
                "no tc/reach workload reached %.1fx at 4 workers (best: %r)"
                % (GATE_SPEEDUP, best_gate)
            )
        if verbose:
            print(
                "gate ok: %(workload)s/%(backend)s %(speedup_4w).2fx at 4 "
                "workers" % best_gate
            )
    report = {}
    if os.path.exists(out):
        with open(out) as handle:
            report = json.load(handle)
    report["parallel"] = leg
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if verbose:
        print("merged parallel leg into %s" % out)
    return leg


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--out", default="BENCH_park.json")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--metrics", action="store_true")
    parser.add_argument("--no-gate", dest="gate", action="store_false")
    args = parser.parse_args(argv)
    run(
        repeats=args.repeats,
        out=args.out,
        quick=args.quick,
        metrics=args.metrics,
        gate=args.gate,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
