"""Counter-fingerprint regression check between two benchmark reports.

The semantic counter fingerprint embedded by ``run_benchmarks.py
--metrics`` (rounds, epochs, restarts, conflicts, firings, blocked — see
``repro.obs.metrics.SEMANTIC_COUNTERS``) describes the PARK computation
itself, not the machine it ran on, so it must be byte-identical between a
fresh run and the committed ``BENCH_park.json``.  CI runs the quick smoke
with ``--metrics`` and feeds the result here; any drift means the engine
now takes a different number of rounds/firings on a reference workload —
a semantic change that must be deliberate and re-baselined, never
accidental.

Usage::

    PYTHONPATH=src python benchmarks/check_fingerprints.py BENCH_smoke.json [BENCH_park.json]

The check also requires the candidate to carry the storage leg — both
relation layouts timed for every workload — so a runner regression that
silently drops the columnar-vs-row comparison fails CI instead of going
unnoticed (the runner itself asserts the layouts' fingerprints agree at
measurement time).

Exit status 0 when every workload shared by the two reports has an
identical fingerprint, 1 otherwise (or if either report lacks telemetry).
"""

import json
import sys

STORAGES = ("columnar", "row")


def _fingerprints(report):
    """``{workload: {counter: value}}`` for workloads carrying telemetry."""
    out = {}
    for name, entry in report.get("workloads", {}).items():
        telemetry = entry.get("telemetry")
        if telemetry and "fingerprint" in telemetry:
            out[name] = {key: value for key, value in telemetry["fingerprint"]}
    return out


def _check_storage_leg(report, path):
    """Every workload must carry both layouts' timings and the speedups."""
    failures = 0
    for name, entry in sorted(report.get("workloads", {}).items()):
        storage = entry.get("storage") or {}
        missing = [
            layout
            for layout in STORAGES
            if not storage.get(layout, {}).get("compiled", {}).get("wall_time_s")
        ]
        if missing or "columnar_speedup" not in storage:
            failures += 1
            print(
                "FAIL %-12s storage leg incomplete in %s (missing: %s)"
                % (name, path, ", ".join(missing) or "columnar_speedup")
            )
    return failures


def check(candidate_path, baseline_path="BENCH_park.json"):
    with open(candidate_path) as handle:
        candidate_report = json.load(handle)
    candidate = _fingerprints(candidate_report)
    with open(baseline_path) as handle:
        baseline = _fingerprints(json.load(handle))
    storage_failures = _check_storage_leg(candidate_report, candidate_path)
    if not candidate:
        print("error: %s carries no telemetry fingerprints "
              "(run with --metrics)" % candidate_path)
        return 1
    if not baseline:
        print("error: %s carries no telemetry fingerprints "
              "(re-baseline with --metrics)" % baseline_path)
        return 1
    shared = sorted(set(candidate) & set(baseline))
    if not shared:
        print("error: no workloads shared between %s and %s"
              % (candidate_path, baseline_path))
        return 1
    failures = 0
    for name in shared:
        if candidate[name] == baseline[name]:
            print("ok   %-12s %s" % (name, _summary(candidate[name])))
            continue
        failures += 1
        print("FAIL %-12s fingerprint drifted:" % name)
        keys = sorted(set(candidate[name]) | set(baseline[name]))
        for key in keys:
            new = candidate[name].get(key)
            old = baseline[name].get(key)
            if new != old:
                print("       %-28s baseline=%r now=%r" % (key, old, new))
    failures += storage_failures
    if failures:
        print("%d checks failed vs %s" % (failures, baseline_path))
        return 1
    print("all %d shared workloads match %s" % (len(shared), baseline_path))
    return 0


def _summary(fingerprint):
    return "rounds=%s epochs=%s firings=%s" % (
        fingerprint.get("engine.rounds"),
        fingerprint.get("engine.epochs"),
        fingerprint.get("engine.firings"),
    )


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if not argv or len(argv) > 2:
        print(__doc__)
        return 1
    return check(*argv)


if __name__ == "__main__":
    sys.exit(main())
