"""Counter-fingerprint regression check between two benchmark reports.

The semantic counter fingerprint embedded by ``run_benchmarks.py
--metrics`` (rounds, epochs, restarts, conflicts, firings, blocked — see
``repro.obs.metrics.SEMANTIC_COUNTERS``) describes the PARK computation
itself, not the machine it ran on, so it must be byte-identical between a
fresh run and the committed ``BENCH_park.json``.  CI runs the quick smoke
with ``--metrics`` and feeds the result here; any drift means the engine
now takes a different number of rounds/firings on a reference workload —
a semantic change that must be deliberate and re-baselined, never
accidental.

Usage::

    PYTHONPATH=src python benchmarks/check_fingerprints.py BENCH_smoke.json [BENCH_park.json]

The check also requires the candidate to carry the storage leg — both
relation layouts timed for every workload — so a runner regression that
silently drops the columnar-vs-row comparison fails CI instead of going
unnoticed (the runner itself asserts the layouts' fingerprints agree at
measurement time).

When either report carries the ``"parallel"`` leg (``bench_parallel.py``),
that leg is gated too: every workload must record per-worker timings for
both backends with ``fingerprint_identical`` asserted at measurement
time, parallel semantic fingerprints shared between the reports must
match, and a full-size (non ``--quick``) baseline leg must show the
>1.5x speedup at 4 workers the parallel executor is committed to.

Exit status 0 when every workload shared by the two reports has an
identical fingerprint, 1 otherwise (or if either report lacks telemetry).
"""

import json
import sys

STORAGES = ("columnar", "row")


def _fingerprints(report):
    """``{workload: {counter: value}}`` for workloads carrying telemetry."""
    out = {}
    for name, entry in report.get("workloads", {}).items():
        telemetry = entry.get("telemetry")
        if telemetry and "fingerprint" in telemetry:
            out[name] = {key: value for key, value in telemetry["fingerprint"]}
    return out


def _check_storage_leg(report, path):
    """Every workload must carry both layouts' timings and the speedups."""
    failures = 0
    for name, entry in sorted(report.get("workloads", {}).items()):
        storage = entry.get("storage") or {}
        missing = [
            layout
            for layout in STORAGES
            if not storage.get(layout, {}).get("compiled", {}).get("wall_time_s")
        ]
        if missing or "columnar_speedup" not in storage:
            failures += 1
            print(
                "FAIL %-12s storage leg incomplete in %s (missing: %s)"
                % (name, path, ", ".join(missing) or "columnar_speedup")
            )
    return failures


def _parallel_fingerprints(report):
    """``{workload: {counter: value}}`` from the parallel leg, when carried."""
    out = {}
    for name, entry in report.get("parallel", {}).get("workloads", {}).items():
        if "fingerprint" in entry:
            out[name] = {key: value for key, value in entry["fingerprint"]}
    return out


def _check_parallel_leg(candidate_report, baseline_report, candidate_path,
                        baseline_path):
    """Completeness + identity + speedup gates on the parallel leg."""
    failures = 0
    leg = candidate_report.get("parallel")
    if leg is None:
        print("FAIL parallel leg missing from %s "
              "(run bench_parallel.py)" % candidate_path)
        return 1
    for name, entry in sorted(leg.get("workloads", {}).items()):
        missing = [
            backend
            for backend in ("interpreted", "compiled")
            if not entry.get(backend, {}).get("workers_4_s")
        ]
        if missing or not entry.get("fingerprint_identical"):
            failures += 1
            print(
                "FAIL %-12s parallel leg incomplete in %s (missing: %s)"
                % (
                    name,
                    candidate_path,
                    ", ".join(missing) or "fingerprint_identical",
                )
            )
    candidate = _parallel_fingerprints(candidate_report)
    baseline = _parallel_fingerprints(baseline_report)
    for name in sorted(set(candidate) & set(baseline)):
        if candidate[name] != baseline[name]:
            failures += 1
            print("FAIL %-12s parallel fingerprint drifted vs %s"
                  % (name, baseline_path))
    baseline_leg = baseline_report.get("parallel")
    if baseline_leg and not baseline_leg.get("quick"):
        best = baseline_leg.get("best") or {}
        threshold = baseline_leg.get("gate_speedup", 1.5)
        if not best or best.get("speedup_4w", 0) < threshold:
            failures += 1
            print(
                "FAIL parallel speedup gate: baseline %s best is %r, "
                "needs >= %.1fx at 4 workers"
                % (baseline_path, best or None, threshold)
            )
        else:
            print(
                "ok   parallel leg: %s/%s %.2fx at 4 workers"
                % (best["workload"], best["backend"], best["speedup_4w"])
            )
    return failures


def check(candidate_path, baseline_path="BENCH_park.json"):
    with open(candidate_path) as handle:
        candidate_report = json.load(handle)
    candidate = _fingerprints(candidate_report)
    with open(baseline_path) as handle:
        baseline_report = json.load(handle)
    baseline = _fingerprints(baseline_report)
    storage_failures = _check_storage_leg(candidate_report, candidate_path)
    storage_failures += _check_parallel_leg(
        candidate_report, baseline_report, candidate_path, baseline_path
    )
    if not candidate:
        print("error: %s carries no telemetry fingerprints "
              "(run with --metrics)" % candidate_path)
        return 1
    if not baseline:
        print("error: %s carries no telemetry fingerprints "
              "(re-baseline with --metrics)" % baseline_path)
        return 1
    shared = sorted(set(candidate) & set(baseline))
    if not shared:
        print("error: no workloads shared between %s and %s"
              % (candidate_path, baseline_path))
        return 1
    failures = 0
    for name in shared:
        if candidate[name] == baseline[name]:
            print("ok   %-12s %s" % (name, _summary(candidate[name])))
            continue
        failures += 1
        print("FAIL %-12s fingerprint drifted:" % name)
        keys = sorted(set(candidate[name]) | set(baseline[name]))
        for key in keys:
            new = candidate[name].get(key)
            old = baseline[name].get(key)
            if new != old:
                print("       %-28s baseline=%r now=%r" % (key, old, new))
    failures += storage_failures
    if failures:
        print("%d checks failed vs %s" % (failures, baseline_path))
        return 1
    print("all %d shared workloads match %s" % (len(shared), baseline_path))
    return 0


def _summary(fingerprint):
    return "rounds=%s epochs=%s firings=%s" % (
        fingerprint.get("engine.rounds"),
        fingerprint.get("engine.epochs"),
        fingerprint.get("engine.firings"),
    )


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if not argv or len(argv) > 2:
        print(__doc__)
        return 1
    return check(*argv)


if __name__ == "__main__":
    sys.exit(main())
