"""Run the static analyzer over every benchmark workload program.

Renders each workload's rule program back to PARK text, feeds it through
``repro.lint.analyze_text`` with the workload's database, and writes a
JSON artifact (per-workload diagnostics + program facts + analysis
time).  CI uploads the artifact so regressions in analyzer coverage or
speed on realistic programs are visible per run.

The benchmark programs are generated safe by construction, so any
error-severity diagnostic here is an analyzer or generator bug: the
script exits non-zero in that case.

Usage:
    PYTHONPATH=src python benchmarks/lint_workloads.py [--quick] [--out LINT_workloads.json]
"""

import argparse
import json
import sys
import time

from repro.lang import render_program
from repro.lint import analyze_text

from run_benchmarks import _workloads


def run(out="LINT_workloads.json", quick=False, verbose=True):
    report = {"workloads": {}}
    errors = 0
    for name, workload in _workloads(quick=quick):
        text = render_program(workload.program)
        start = time.perf_counter()
        file_report = analyze_text(
            text, path=name, database=workload.database
        )
        elapsed = time.perf_counter() - start
        by_severity = {"error": 0, "warning": 0, "info": 0}
        for diagnostic in file_report.diagnostics:
            by_severity[diagnostic.severity] += 1
        errors += by_severity["error"]
        groups = file_report.facts.parallel_groups
        report["workloads"][name] = {
            "rules": file_report.rules,
            "analysis_time_s": round(elapsed, 6),
            "diagnostics": [d.to_json() for d in file_report.diagnostics],
            "severity_counts": by_severity,
            "facts": file_report.facts.to_json(),
            "certified_groups": {
                "total": len(groups),
                "multi_rule": sum(1 for g in groups if len(g.rules) > 1),
                "largest": max((len(g.rules) for g in groups), default=0),
            },
        }
        if verbose:
            print(
                "%-12s %3d rules  %8.4fs  %d error(s), %d warning(s), "
                "%d info  conflict-free=%s  groups=%d (%d multi-rule)"
                % (
                    name,
                    file_report.rules,
                    elapsed,
                    by_severity["error"],
                    by_severity["warning"],
                    by_severity["info"],
                    file_report.facts.conflict_free,
                    len(groups),
                    sum(1 for g in groups if len(g.rules) > 1),
                )
            )
    report["summary"] = {
        "workloads": len(report["workloads"]),
        "errors": errors,
    }
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if verbose:
        print("wrote %s" % out)
    if errors:
        print(
            "FAIL: %d error-severity diagnostic(s) on generated workloads"
            % errors,
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="LINT_workloads.json")
    parser.add_argument(
        "--quick", action="store_true", help="smaller workload set for CI"
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    return run(out=args.out, quick=args.quick, verbose=not args.quiet)


if __name__ == "__main__":
    sys.exit(main())
